type labels = (string * string) list

module Counter = struct
  type t = { mutable n : int }

  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let value t = t.n
end

module Gauge = struct
  type t = { mutable v : float }

  let set t v = t.v <- v
  let value t = t.v
end

module Histogram = struct
  type t = {
    bounds : float array;       (* finite upper bounds, ascending *)
    counts : int array;         (* per-bucket counts; length bounds + 1 *)
    mutable total : int;
    mutable sum : float;
  }

  let observe t v =
    let rec find i =
      if i >= Array.length t.bounds then Array.length t.bounds
      else if v <= t.bounds.(i) then i
      else find (i + 1)
    in
    let i = find 0 in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. v

  let count t = t.total
  let sum t = t.sum

  let buckets t =
    let acc = ref 0 in
    let finite =
      Array.to_list
        (Array.mapi
           (fun i b ->
             acc := !acc + t.counts.(i);
             (b, !acc))
           t.bounds)
    in
    finite @ [ (infinity, t.total) ]
end

type instrument =
  | Icounter of Counter.t
  | Igauge of Gauge.t
  | Ihist of Histogram.t

type key = { name : string; labels : labels }

type t = {
  tbl : (key, instrument) Hashtbl.t;
  mutable order : key list;  (* registration order, reversed *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let canon labels = List.sort compare labels

let register t name labels make select =
  let key = { name; labels = canon labels } in
  match Hashtbl.find_opt t.tbl key with
  | Some inst -> select inst
  | None ->
    let inst = make () in
    Hashtbl.add t.tbl key inst;
    t.order <- key :: t.order;
    select inst

let type_error name = invalid_arg ("Metrics: " ^ name ^ " registered with another type")

let counter t ?(labels = []) name =
  register t name labels
    (fun () -> Icounter { Counter.n = 0 })
    (function Icounter c -> c | _ -> type_error name)

let gauge t ?(labels = []) name =
  register t name labels
    (fun () -> Igauge { Gauge.v = 0.0 })
    (function Igauge g -> g | _ -> type_error name)

let default_buckets = [ 1.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. ]

let histogram t ?(labels = []) ?(buckets = default_buckets) name =
  let bounds = Array.of_list buckets in
  register t name labels
    (fun () ->
      Ihist
        { Histogram.bounds; counts = Array.make (Array.length bounds + 1) 0;
          total = 0; sum = 0.0 })
    (function Ihist h -> h | _ -> type_error name)

(* ------------------------------------------------------------------ *)
(* Interpreter instrumentation                                         *)

let listener t =
  let proc_label p = [ ("proc", string_of_int p) ] in
  {
    Fs_trace.Listener.access =
      (fun ~proc ~write ~addr:_ ->
        Counter.incr
          (counter t
             ~labels:(("kind", if write then "write" else "read") :: proc_label proc)
             "interp_accesses"));
    work =
      (fun ~proc ~amount ->
        Counter.add (counter t ~labels:(proc_label proc) "interp_work_units") amount);
    barrier_arrive =
      (fun ~proc ->
        Counter.incr (counter t ~labels:(proc_label proc) "interp_barrier_arrivals"));
    barrier_release =
      (fun () -> Counter.incr (counter t "interp_barrier_releases"));
    lock_wait =
      (fun ~proc ~addr:_ ->
        Counter.incr (counter t ~labels:(proc_label proc) "interp_lock_waits"));
    lock_grant =
      (fun ~proc ~addr:_ ~from ->
        Counter.incr
          (counter t
             ~labels:
               (("contended", if from >= 0 then "true" else "false")
                :: proc_label proc)
             "interp_lock_grants"));
  }

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let sorted_entries t =
  List.map (fun key -> (key, Hashtbl.find t.tbl key)) (List.rev t.order)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let to_json t =
  Json.List
    (List.map
       (fun ({ name; labels }, inst) ->
         let base = [ ("name", Json.String name); ("labels", labels_json labels) ] in
         match inst with
         | Icounter c ->
           Json.Obj
             (base @ [ ("type", Json.String "counter"); ("value", Json.Int (Counter.value c)) ])
         | Igauge g ->
           Json.Obj
             (base @ [ ("type", Json.String "gauge"); ("value", Json.float (Gauge.value g)) ])
         | Ihist h ->
           Json.Obj
             (base
              @ [ ("type", Json.String "histogram");
                  ("count", Json.Int (Histogram.count h));
                  ("sum", Json.float (Histogram.sum h));
                  ("buckets",
                   Json.List
                     (List.map
                        (fun (le, n) ->
                          Json.Obj
                            [ ("le",
                               if Float.is_finite le then Json.float le
                               else Json.String "+Inf");
                              ("count", Json.Int n) ])
                        (Histogram.buckets h))) ]))
       (sorted_entries t))

(* Prometheus label-value escaping: exactly backslash, double quote, and
   newline (the exposition format's three escapes).  OCaml's [%S] is close
   but wrong — it also rewrites tabs and non-ASCII bytes to [\ddd] decimal
   escapes no Prometheus parser understands. *)
let escape_label v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf {|\\|}
      | '"' -> Buffer.add_string buf {|\"|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render t =
  let buf = Buffer.create 1024 in
  let label_text labels =
    match labels with
    | [] -> ""
    | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             labels)
      ^ "}"
  in
  List.iter
    (fun ({ name; labels }, inst) ->
      match inst with
      | Icounter c ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" name (label_text labels) (Counter.value c))
      | Igauge g ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %g\n" name (label_text labels) (Gauge.value g))
      | Ihist h ->
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" name (label_text labels) (Histogram.count h));
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %g\n" name (label_text labels) (Histogram.sum h)))
    (sorted_entries t);
  Buffer.contents buf
