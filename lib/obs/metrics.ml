type labels = (string * string) list

module Counter = struct
  type t = { mutable n : int }

  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let value t = t.n
end

module Gauge = struct
  type t = { mutable v : float }

  let set t v = t.v <- v
  let add t d = t.v <- t.v +. d
  let value t = t.v
end

module Histogram = struct
  type t = {
    bounds : float array;       (* finite upper bounds, ascending *)
    counts : int array;         (* per-bucket counts; length bounds + 1 *)
    mutable total : int;
    mutable sum : float;
  }

  let observe t v =
    let rec find i =
      if i >= Array.length t.bounds then Array.length t.bounds
      else if v <= t.bounds.(i) then i
      else find (i + 1)
    in
    let i = find 0 in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. v

  let count t = t.total
  let sum t = t.sum

  (* merge pre-bucketed observations (the domain pool keeps fixed-bucket
     counts rather than one float per task); [counts] are per-bucket,
     not cumulative, and must match this histogram's bucket count *)
  let absorb t ~counts ~sum =
    if Array.length counts <> Array.length t.counts then
      invalid_arg "Metrics.Histogram.absorb: bucket count mismatch";
    Array.iteri
      (fun i c ->
        t.counts.(i) <- t.counts.(i) + c;
        t.total <- t.total + c)
      counts;
    t.sum <- t.sum +. sum

  let buckets t =
    let acc = ref 0 in
    let finite =
      Array.to_list
        (Array.mapi
           (fun i b ->
             acc := !acc + t.counts.(i);
             (b, !acc))
           t.bounds)
    in
    finite @ [ (infinity, t.total) ]
end

type instrument =
  | Icounter of Counter.t
  | Igauge of Gauge.t
  | Ihist of Histogram.t

type key = { name : string; labels : labels }

type t = {
  tbl : (key, instrument) Hashtbl.t;
  help : (string, string) Hashtbl.t;  (* per metric name; first wins *)
  mutable order : key list;  (* registration order, reversed *)
}

let create () = { tbl = Hashtbl.create 64; help = Hashtbl.create 16; order = [] }

(* the process-global registry long-lived front ends accumulate into
   (pool fan-outs, CLI command timings) for [--metrics-out] *)
let global_registry = lazy (create ())
let global () = Lazy.force global_registry

let canon labels = List.sort compare labels

(* Prometheus grammar: metric names match [a-zA-Z_:][a-zA-Z0-9_:]*,
   label names [a-zA-Z_][a-zA-Z0-9_]* (no colons).  A bad name renders
   an exposition no scraper will parse, so reject it at registration
   where the stack trace still points at the culprit. *)
let name_ok ~label s =
  let body i c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
    | '0' .. '9' -> i > 0
    | ':' -> not label
    | _ -> false
  in
  s <> ""
  && (let ok = ref true in
      String.iteri (fun i c -> if not (body i c) then ok := false) s;
      !ok)

let check_names name labels =
  if not (name_ok ~label:false name) then
    invalid_arg
      (Printf.sprintf
         "Metrics: invalid metric name %S (must match [a-zA-Z_:][a-zA-Z0-9_:]*)"
         name);
  List.iter
    (fun (k, _) ->
      if not (name_ok ~label:true k) then
        invalid_arg
          (Printf.sprintf
             "Metrics: invalid label name %S on metric %S (must match \
              [a-zA-Z_][a-zA-Z0-9_]*)"
             k name))
    labels

let register t name labels help make select =
  check_names name labels;
  (match help with
   | Some h when not (Hashtbl.mem t.help name) -> Hashtbl.add t.help name h
   | _ -> ());
  let key = { name; labels = canon labels } in
  match Hashtbl.find_opt t.tbl key with
  | Some inst -> select inst
  | None ->
    let inst = make () in
    Hashtbl.add t.tbl key inst;
    t.order <- key :: t.order;
    select inst

let type_error name = invalid_arg ("Metrics: " ^ name ^ " registered with another type")

let counter t ?(labels = []) ?help name =
  register t name labels help
    (fun () -> Icounter { Counter.n = 0 })
    (function Icounter c -> c | _ -> type_error name)

let gauge t ?(labels = []) ?help name =
  register t name labels help
    (fun () -> Igauge { Gauge.v = 0.0 })
    (function Igauge g -> g | _ -> type_error name)

let default_buckets = [ 1.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. ]

let histogram t ?(labels = []) ?help ?(buckets = default_buckets) name =
  let bounds = Array.of_list buckets in
  register t name labels help
    (fun () ->
      Ihist
        { Histogram.bounds; counts = Array.make (Array.length bounds + 1) 0;
          total = 0; sum = 0.0 })
    (function Ihist h -> h | _ -> type_error name)

(* ------------------------------------------------------------------ *)
(* Interpreter instrumentation                                         *)

let listener t =
  let proc_label p = [ ("proc", string_of_int p) ] in
  {
    Fs_trace.Listener.access =
      (fun ~proc ~write ~addr:_ ->
        Counter.incr
          (counter t
             ~labels:(("kind", if write then "write" else "read") :: proc_label proc)
             "interp_accesses"));
    work =
      (fun ~proc ~amount ->
        Counter.add (counter t ~labels:(proc_label proc) "interp_work_units") amount);
    barrier_arrive =
      (fun ~proc ->
        Counter.incr (counter t ~labels:(proc_label proc) "interp_barrier_arrivals"));
    barrier_release =
      (fun () -> Counter.incr (counter t "interp_barrier_releases"));
    lock_wait =
      (fun ~proc ~addr:_ ->
        Counter.incr (counter t ~labels:(proc_label proc) "interp_lock_waits"));
    lock_grant =
      (fun ~proc ~addr:_ ~from ->
        Counter.incr
          (counter t
             ~labels:
               (("contended", if from >= 0 then "true" else "false")
                :: proc_label proc)
             "interp_lock_grants"));
  }

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let sorted_entries t =
  List.map (fun key -> (key, Hashtbl.find t.tbl key)) (List.rev t.order)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let to_json t =
  Json.List
    (List.map
       (fun ({ name; labels }, inst) ->
         let base = [ ("name", Json.String name); ("labels", labels_json labels) ] in
         match inst with
         | Icounter c ->
           Json.Obj
             (base @ [ ("type", Json.String "counter"); ("value", Json.Int (Counter.value c)) ])
         | Igauge g ->
           Json.Obj
             (base @ [ ("type", Json.String "gauge"); ("value", Json.float (Gauge.value g)) ])
         | Ihist h ->
           Json.Obj
             (base
              @ [ ("type", Json.String "histogram");
                  ("count", Json.Int (Histogram.count h));
                  ("sum", Json.float (Histogram.sum h));
                  ("buckets",
                   Json.List
                     (List.map
                        (fun (le, n) ->
                          Json.Obj
                            [ ("le",
                               if Float.is_finite le then Json.float le
                               else Json.String "+Inf");
                              ("count", Json.Int n) ])
                        (Histogram.buckets h))) ]))
       (sorted_entries t))

(* Prometheus label-value escaping: exactly backslash, double quote, and
   newline (the exposition format's three escapes).  OCaml's [%S] is close
   but wrong — it also rewrites tabs and non-ASCII bytes to [\ddd] decimal
   escapes no Prometheus parser understands. *)
let escape_label v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf {|\\|}
      | '"' -> Buffer.add_string buf {|\"|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* HELP text escaping: the exposition format escapes exactly backslash
   and newline there (label values additionally escape the quote). *)
let escape_help v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf {|\\|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Prometheus float formatting: %g matches what client libraries emit
   (1e+06 and friends parse fine), but +Inf must be spelled that way *)
let prom_float v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%g" v

let render t =
  let buf = Buffer.create 1024 in
  let label_text labels =
    match labels with
    | [] -> ""
    | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             labels)
      ^ "}"
  in
  (* the exposition format groups a metric's series under one # HELP and
     # TYPE header; sorted_entries already collates label sets by name *)
  let last_name = ref None in
  let header name inst =
    if !last_name <> Some name then begin
      last_name := Some name;
      (match Hashtbl.find_opt t.help name with
       | Some h ->
         Buffer.add_string buf
           (Printf.sprintf "# HELP %s %s\n" name (escape_help h))
       | None -> ());
      let ty =
        match inst with
        | Icounter _ -> "counter"
        | Igauge _ -> "gauge"
        | Ihist _ -> "histogram"
      in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name ty)
    end
  in
  List.iter
    (fun ({ name; labels }, inst) ->
      header name inst;
      match inst with
      | Icounter c ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" name (label_text labels) (Counter.value c))
      | Igauge g ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" name (label_text labels)
             (prom_float (Gauge.value g)))
      | Ihist h ->
        List.iter
          (fun (le, cum) ->
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (label_text (labels @ [ ("le", prom_float le) ]))
                 cum))
          (Histogram.buckets h);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" name (label_text labels)
             (prom_float (Histogram.sum h)));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" name (label_text labels)
             (Histogram.count h)))
    (sorted_entries t);
  Buffer.contents buf

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render t))
