(** Flight recorder for the fused replay hot loop.

    The fused packed-replay path retires tens of millions of events per
    second; any per-event instrumentation that allocates or takes a lock
    would dominate the loop it is meant to observe.  The recorder
    therefore samples: every [interval] packed events the loop deposits
    one row — live cumulative cache counters, wall-clock offset, and the
    block of the most recent access — into a fixed-size ring of parallel
    scalar arrays.  A sample is a handful of unboxed stores and allocates
    nothing, so the GC never sees the recorder during replay.  When no
    recorder is passed to {!Replay.simulate} the instrumented loop is not
    even entered — the disabled path is the untouched original code.

    The ring keeps the most recent [capacity] samples (older ones are
    overwritten), which bounds memory for arbitrarily long traces while
    retaining the tail — where steady-state rate and miss mix live. *)

type t

val create : ?capacity:int -> ?interval:int -> unit -> t
(** [create ()] makes an idle recorder.  [capacity] (default 256) is the
    ring size in samples; [interval] (default 4096) is the number of
    packed events between samples.  Raises [Invalid_argument] if either
    is not positive. *)

val interval : t -> int

val start : t -> unit
(** Reset the ring and stamp time zero.  {!Replay.simulate} calls this
    on entry, so a recorder can be reused across runs. *)

val sample :
  t -> at_event:int -> counts:Fs_cache.Mpcache.counts -> block:int -> unit
(** Deposit one row: [at_event] is the index of the packed event just
    retired, [counts] the simulator's live cumulative counters (read,
    not retained), [block] the block number of the most recent access.
    Called by the instrumented replay loop; allocation-free. *)

(** One retained row, decoded out of the ring. *)
type sample = {
  s_event : int;
  s_wall : float;  (** seconds since {!start} *)
  s_reads : int;
  s_writes : int;
  s_cold : int;
  s_repl : int;
  s_true_sh : int;
  s_false_sh : int;
  s_block : int;
}

val samples : t -> sample list
(** Retained samples in chronological order (oldest surviving first —
    the ring may have overwritten earlier ones). *)

(** Summary of a recording, computed from the retained samples. *)
type digest = {
  d_interval : int;
  d_taken : int;      (** samples ever taken, including overwritten ones *)
  d_retained : int;
  d_events : int;     (** event index at the last sample *)
  d_wall : float;     (** wall seconds at the last sample *)
  d_rate : float;     (** Mevents/s over the whole recording *)
  d_peak_rate : float;(** max Mevents/s between consecutive samples *)
  d_cold : int;
  d_repl : int;
  d_true_sh : int;
  d_false_sh : int;   (** miss mix at the last sample (cumulative) *)
  d_hot_block : int;  (** most frequently sampled current block; [-1] if empty *)
  d_hot_share : float;
}

val digest : t -> digest

val render : t -> string
(** Human-readable digest: sampling cadence, event rate with peak, the
    hottest sampled block, and a bar chart of the final miss mix. *)

val to_json : t -> Fs_obs.Json.t
(** Digest plus the full retained sample list, for [--json] consumers. *)
