(** Mapping layout-free cell traces to concrete address streams.

    The interpreter decides {e what} is accessed in {e which} order; a
    layout decides {e where} each cell lives.  This module is the second
    half of that split: it routes a {!Fs_trace.Cell_trace} (or a live
    cell-event stream) through a layout's address oracle, producing
    exactly the address-level {!Fs_trace.Listener} stream the simulators
    consume — including the pointer-load reads an indirection layout
    interposes, which exist only at replay time.

    Replay is deterministic and order-preserving: one recorded trace
    replayed under two layouts yields two address streams over the same
    schedule, which is what makes false-sharing comparisons across
    layouts meaningful (the paper's simulator "only observes the address
    stream"). *)

val vars_of : Fs_ir.Ast.program -> string array
(** Variable ids in declaration order — the id space of the interpreter's
    cell events and of recorded traces. *)

type oracle

val oracle : Fs_layout.Layout.t -> vars:string array -> oracle
(** Resolve the per-variable address tables once.
    @raise Invalid_argument when the layout lacks one of [vars]. *)

val translating : oracle -> Fs_trace.Listener.t -> Fs_trace.Cell_listener.t
(** The translation itself, usable both online (the interpreter's direct
    path wires its cell stream straight into this) and offline (replay of
    a recorded trace). *)

val replay :
  Fs_trace.Cell_trace.t ->
  layout:Fs_layout.Layout.t ->
  listener:Fs_trace.Listener.t ->
  unit
(** Replay a recorded trace through a layout, event for event. *)

val replay_to_sink :
  Fs_trace.Cell_trace.t ->
  layout:Fs_layout.Layout.t ->
  sink:Fs_trace.Sink.t ->
  unit

val simulate :
  ?flight:Flight.t ->
  Fs_trace.Cell_trace.t ->
  layout:Fs_layout.Layout.t ->
  cache:Fs_cache.Mpcache.t ->
  unit
(** The fused simulator hot path: iterate the packed event stream
    directly, decode each access inline, map it through the oracle's flat
    arrays, and feed {!Fs_cache.Mpcache.touch} — no per-event variant
    allocation and no listener dispatch.  Produces counts identical to
    [replay_to_sink _ ~sink:(Mpcache.sink cache)] (the reference path,
    which remains the route for tracking/epoch consumers that need the
    full listener event stream).

    Passing [?flight] runs an instrumented twin of the loop that deposits
    one allocation-free sample into the {!Flight} ring every
    [Flight.interval] packed events (live cumulative counts, wall offset,
    block of the most recent access).  Cache counts are identical with or
    without a recorder; when [flight] is absent the original
    uninstrumented loop runs — the disabled path costs nothing. *)
