(** Mapping layout-free cell traces to concrete address streams.

    The interpreter decides {e what} is accessed in {e which} order; a
    layout decides {e where} each cell lives.  This module is the second
    half of that split: it routes a {!Fs_trace.Cell_trace} (or a live
    cell-event stream) through a layout's address oracle, producing
    exactly the address-level {!Fs_trace.Listener} stream the simulators
    consume — including the pointer-load reads an indirection layout
    interposes, which exist only at replay time.

    Replay is deterministic and order-preserving: one recorded trace
    replayed under two layouts yields two address streams over the same
    schedule, which is what makes false-sharing comparisons across
    layouts meaningful (the paper's simulator "only observes the address
    stream"). *)

val vars_of : Fs_ir.Ast.program -> string array
(** Variable ids in declaration order — the id space of the interpreter's
    cell events and of recorded traces. *)

type oracle

val oracle : Fs_layout.Layout.t -> vars:string array -> oracle
(** Resolve the per-variable address tables once.
    @raise Invalid_argument when the layout lacks one of [vars]. *)

val translating : oracle -> Fs_trace.Listener.t -> Fs_trace.Cell_listener.t
(** The translation itself, usable both online (the interpreter's direct
    path wires its cell stream straight into this) and offline (replay of
    a recorded trace). *)

val replay :
  Fs_trace.Cell_trace.t ->
  layout:Fs_layout.Layout.t ->
  listener:Fs_trace.Listener.t ->
  unit
(** Replay a recorded trace through a layout, event for event. *)

val replay_to_sink :
  Fs_trace.Cell_trace.t ->
  layout:Fs_layout.Layout.t ->
  sink:Fs_trace.Sink.t ->
  unit

val simulate :
  ?flight:Flight.t ->
  Fs_trace.Cell_trace.t ->
  layout:Fs_layout.Layout.t ->
  cache:Fs_cache.Mpcache.t ->
  unit
(** The fused simulator hot path: iterate the packed event stream
    directly, decode each access inline, map it through the oracle's flat
    arrays, and feed {!Fs_cache.Mpcache.touch} — no per-event variant
    allocation and no listener dispatch.  Produces counts identical to
    [replay_to_sink _ ~sink:(Mpcache.sink cache)] (the reference path,
    which remains the route for tracking/epoch consumers that need the
    full listener event stream).

    Passing [?flight] runs an instrumented twin of the loop that deposits
    one allocation-free sample into the {!Flight} ring every
    [Flight.interval] packed events (live cumulative counts, wall offset,
    block of the most recent access).  Cache counts are identical with or
    without a recorder; when [flight] is absent the original
    uninstrumented loop runs — the disabled path costs nothing. *)

(** {1 Sharded replay}

    One replay spread across domains: the address space is partitioned
    by cache {e set} (see {!Fs_cache.Mpcache.shard_of_addr}), each shard
    simulates its private slab, and the merged counts are {e bit
    identical} to the single-cache run — the coherence protocol never
    compares state across blocks, and LRU never compares across sets, so
    set-aligned substreams replayed in trace order lose nothing.

    Epoch cuts at every [Barrier_release] reconcile without cross-domain
    synchronization: shards snapshot their counts at each cut, and the
    merged per-epoch deltas telescope to the whole-run totals. *)

type sharded = {
  shards : Fs_cache.Mpcache.Shard.t array;
  counts : Fs_cache.Mpcache.counts;
      (** merged whole-run totals, bit-identical to the unsharded run *)
  epochs : Fs_cache.Mpcache.counts array;
      (** merged counts per barrier-release epoch: entry [e] covers the
          events between release [e - 1] (or the start) and release [e],
          the last entry the tail after the final release; the entries
          sum field-wise to [counts] *)
}

val sharded_caches : sharded -> Fs_cache.Mpcache.t array
(** The per-shard simulators, by shard index — feed them to the
    [Mpcache.merged_*] functions for per-block, pair, or line views. *)

val simulate_sharded :
  ?pool:Fs_util.Par.Pool.t ->
  ?track_blocks:bool ->
  ?track_pairs:bool ->
  ?track_lines:bool ->
  Fs_trace.Cell_trace.t ->
  shards:int ->
  layout:Fs_layout.Layout.t ->
  config:Fs_cache.Mpcache.config ->
  sharded
(** [shards = 1] runs the fused loop (plus the epoch cut) on the calling
    domain — no pool, no partitioning.  [shards > 1] alternates two pool
    barriers per chunk: a parallel partition of the packed events into
    per-shard batches, then a parallel drain of each shard's batch into
    its slab.  [pool] supplies a persistent {!Fs_util.Par.Pool} to run
    on (e.g. to amortize across many replays or to control [jobs]);
    without it a pool of [min shards (Par.default_jobs ())] workers is
    created and shut down around the call.
    @raise Invalid_argument when [shards < 1]. *)

val simulate_sharded_stream :
  ?pool:Fs_util.Par.Pool.t ->
  ?track_blocks:bool ->
  ?track_pairs:bool ->
  ?track_lines:bool ->
  Fs_trace.Cell_trace.Stream.t ->
  shards:int ->
  layout:Fs_layout.Layout.t ->
  config:Fs_cache.Mpcache.config ->
  sharded
(** {!simulate_sharded} over a chunked on-disk trace: counts are
    identical to replaying the in-memory trace, while peak heap use
    stays bounded by the stream's block size times a small decode
    window.  With [shards > 1] the stream's blocks are decoded {e on the
    pool}, pipelined one window ahead of the shard drain (a worker that
    finishes draining picks up the next block's decode), so decode
    overlaps the coherence simulation; [shards = 1] decodes inline on
    the calling domain.  A [Cell_trace.Corrupt] raised by a worker
    decode re-raises at the caller. *)
