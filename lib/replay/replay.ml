module Layout = Fs_layout.Layout
module Cell_event = Fs_trace.Cell_event
module Cell_trace = Fs_trace.Cell_trace
module Cell_listener = Fs_trace.Cell_listener
module Listener = Fs_trace.Listener
module Mpcache = Fs_cache.Mpcache

let vars_of prog =
  Array.of_list (List.map fst prog.Fs_ir.Ast.globals)

(* ------------------------------------------------------------------ *)
(* The address oracle: per variable id, the cell -> address map of one
   realized layout, plus the injected-pointer-cell map for indirection. *)

type oracle = {
  addr : int array array;
  extra : int array array;
}

let oracle layout ~vars =
  let lookup name =
    match Layout.lookup layout name with
    | vl -> vl
    | exception Not_found ->
      invalid_arg ("Replay.oracle: layout has no variable " ^ name)
  in
  {
    addr = Array.map (fun name -> (lookup name).Layout.addr) vars;
    extra = Array.map (fun name -> (lookup name).Layout.extra) vars;
  }

let translating o (l : Listener.t) : Cell_listener.t =
  {
    access =
      (fun ~proc ~write ~var ~cell ->
        (* an indirection layout interposes a pointer cell: the read of the
           pointer happens before the data reference it redirects *)
        let extra = o.extra.(var) in
        if Array.length extra > 0 && extra.(cell) >= 0 then
          l.Listener.access ~proc ~write:false ~addr:extra.(cell);
        l.Listener.access ~proc ~write ~addr:o.addr.(var).(cell));
    work = l.Listener.work;
    barrier_arrive = l.Listener.barrier_arrive;
    barrier_release = l.Listener.barrier_release;
    lock_wait =
      (fun ~proc ~var ~cell ->
        l.Listener.lock_wait ~proc ~addr:o.addr.(var).(cell));
    lock_grant =
      (fun ~proc ~var ~cell ~from ->
        l.Listener.lock_grant ~proc ~addr:o.addr.(var).(cell) ~from);
    (* steals are scheduling annotations, not memory traffic: they have
       no address under any layout, so the translation drops them — the
       deque traffic they caused is already in the stream as accesses *)
    steal = (fun ~thief:_ ~victim:_ ~task:_ -> ());
  }

(* ------------------------------------------------------------------ *)

let replay trace ~layout ~listener =
  let o = oracle layout ~vars:(Cell_trace.vars trace) in
  let cells = translating o listener in
  Cell_trace.deliver trace cells

let replay_to_sink trace ~layout ~sink =
  replay trace ~layout ~listener:(Listener.of_sink sink)

(* ------------------------------------------------------------------ *)
(* The fused hot path: packed trace -> address oracle -> cache, with no
   event unpacking, no listener dispatch, and no per-event allocation.
   Only Access events reach the cache — exactly what the listener path
   delivers through [Listener.of_sink], where every other hook is a
   no-op — so the two paths produce identical counts (property-tested
   over every workload). *)

(* The instrumented twin of the fused loop below.  It is a separate body
   (not a [match] inside the loop) so the recorder-disabled path pays
   nothing: no flight means the original loops run untouched.  The event
   stream is walked in interval-sized chunks — the inner loops are the
   original bodies verbatim, and all sampling work (an allocation-free
   ring deposit, plus a backward scan for the most recent access to
   attribute a current block) happens once per chunk boundary, so the
   per-event cost of the recorder is exactly zero. *)
let simulate_recorded trace ~layout ~cache ~(flight : Flight.t) =
  let o = oracle layout ~vars:(Cell_trace.vars trace) in
  let addr = o.addr and extra = o.extra in
  let data = Cell_trace.unsafe_data trace in
  let n = Cell_trace.length trace in
  let has_extra = Array.exists (fun ex -> Array.length ex > 0) extra in
  let bshift =
    (* block size is a power of two (enforced by Mpcache) *)
    let b = (Mpcache.config cache).Mpcache.block in
    let s = ref 0 in
    while 1 lsl !s < b do incr s done;
    !s
  in
  let counts = Mpcache.counts cache in
  let interval = Flight.interval flight in
  (* the data address of the most recent access at or before event [i];
     0 when no access has happened yet.  Off the hot path: called once
     per sample, and the scan almost always stops within a few events. *)
  let last_access_addr i =
    let rec find i =
      if i < 0 then 0
      else
        let packed = Array.unsafe_get data i in
        if Cell_event.packed_is_access packed then
          addr.(Cell_event.packed_var packed).(Cell_event.packed_cell packed)
        else find (i - 1)
    in
    find i
  in
  Flight.start flight;
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + interval) in
    if has_extra then
      for i = !lo to hi - 1 do
        let packed = Array.unsafe_get data i in
        if Cell_event.packed_is_access packed then begin
          let proc = Cell_event.packed_proc packed in
          let cell = Cell_event.packed_cell packed in
          let var = Cell_event.packed_var packed in
          let ex = extra.(var) in
          if Array.length ex > 0 && ex.(cell) >= 0 then
            Mpcache.touch cache ~proc ~write:false ~addr:ex.(cell);
          Mpcache.touch cache ~proc
            ~write:(Cell_event.packed_write packed)
            ~addr:addr.(var).(cell)
        end
      done
    else
      for i = !lo to hi - 1 do
        let packed = Array.unsafe_get data i in
        if Cell_event.packed_is_access packed then
          Mpcache.touch cache
            ~proc:(Cell_event.packed_proc packed)
            ~write:(Cell_event.packed_write packed)
            ~addr:addr.(Cell_event.packed_var packed).(Cell_event.packed_cell
                                                         packed)
      done;
    lo := hi;
    (* the final partial chunk also deposits a sample, so short traces
       still record their end state *)
    Flight.sample flight ~at_event:(hi - 1) ~counts
      ~block:(last_access_addr (hi - 1) lsr bshift)
  done

let simulate ?flight trace ~layout ~cache =
  match flight with
  | Some fr -> simulate_recorded trace ~layout ~cache ~flight:fr
  | None ->
  let o = oracle layout ~vars:(Cell_trace.vars trace) in
  let addr = o.addr and extra = o.extra in
  let data = Cell_trace.unsafe_data trace in
  let n = Cell_trace.length trace in
  (* only indirection layouts inject pointer cells; when none did, the
     whole per-event pointer-read check can be dropped from the loop *)
  let has_extra = Array.exists (fun ex -> Array.length ex > 0) extra in
  if has_extra then
    for i = 0 to n - 1 do
      let packed = Array.unsafe_get data i in
      if Cell_event.packed_is_access packed then begin
        let proc = Cell_event.packed_proc packed in
        let cell = Cell_event.packed_cell packed in
        let var = Cell_event.packed_var packed in
        let ex = extra.(var) in
        (* an indirection layout interposes a pointer cell: the read of
           the pointer happens before the data reference it redirects *)
        if Array.length ex > 0 && ex.(cell) >= 0 then
          Mpcache.touch cache ~proc ~write:false ~addr:ex.(cell);
        Mpcache.touch cache ~proc
          ~write:(Cell_event.packed_write packed)
          ~addr:addr.(var).(cell)
      end
    done
  else
    for i = 0 to n - 1 do
      let packed = Array.unsafe_get data i in
      if Cell_event.packed_is_access packed then
        Mpcache.touch cache
          ~proc:(Cell_event.packed_proc packed)
          ~write:(Cell_event.packed_write packed)
          ~addr:addr.(Cell_event.packed_var packed).(Cell_event.packed_cell
                                                       packed)
    done

(* ------------------------------------------------------------------ *)
(* Sharded replay.  The event stream is consumed in chunks; each chunk
   runs two pool barriers:

   Phase A — every worker scans one slice of the chunk, resolves
   addresses through the oracle (including the pointer loads an
   indirection layout injects), and appends packed items to its own
   per-shard buckets; a barrier-release event deposits an epoch sentinel
   in {e every} shard's bucket.

   Phase B — every shard drains its buckets in slice order (worker 0's
   items, then worker 1's, ...), which reconstitutes that shard's
   substream in exact trace order, and feeds its private slab.

   Bit-identity with the unsharded run rests on two facts: the shard
   hash is set-aligned (see {!Mpcache.shard_of_addr}), so every
   comparison the protocol makes is between events of one shard; and
   both phases preserve each shard's relative event order, so those
   comparisons resolve identically even though shard-local clock values
   differ from the global run's.

   Epochs reconcile post hoc: each shard snapshots its counts at every
   sentinel, and epoch [e]'s merged counts are the summed per-shard
   deltas between consecutive snapshots — no cross-domain barrier per
   epoch, and the deltas sum to the whole-run totals by telescoping. *)

module Par = Fs_util.Par

type sharded = {
  shards : Mpcache.Shard.t array;
  counts : Mpcache.counts;
  epochs : Mpcache.counts array;
}

let sharded_caches s = Array.map Mpcache.Shard.cache s.shards

(* Shard-batch items: address lsl 9 | proc lsl 1 | write, which keeps
   the Phase B decode to three shifts; -1 is the epoch sentinel (real
   items are non-negative). *)
let[@inline] item_pack ~proc ~write ~addr =
  (addr lsl 9) lor (proc lsl 1) lor (if write then 1 else 0)

let epoch_sentinel = -1

type buf = { mutable b : int array; mutable n : int }

let buf_make () = { b = Array.make 256 0; n = 0 }

let[@inline] buf_push t x =
  if t.n = Array.length t.b then begin
    let bigger = Array.make (2 * t.n) 0 in
    Array.blit t.b 0 bigger 0 t.n;
    t.b <- bigger
  end;
  Array.unsafe_set t.b t.n x;
  t.n <- t.n + 1

(* The event source: either a closure yielding (buffer, length) chunks
   in trace order — one whole-array chunk for an in-memory trace — or an
   open on-disk stream, whose blocks the sharded path decodes on pool
   workers ahead of the drain (see below). *)
type feed =
  | Feed_chunks of ((int array -> int -> unit) -> unit)
  | Feed_stream of Cell_trace.Stream.t

let run_sharded ~shards:nshards ?pool ?track_blocks ?track_pairs ?track_lines
    ~vars ~layout ~config feed =
  if nshards <= 0 then
    invalid_arg "Replay.simulate_sharded: shards must be >= 1";
  let o = oracle layout ~vars in
  let addr = o.addr and extra = o.extra in
  let has_extra = Array.exists (fun ex -> Array.length ex > 0) extra in
  let max_addr = Layout.size layout in
  let slabs =
    Array.init nshards (fun index ->
        Mpcache.Shard.create ?track_blocks ?track_pairs ?track_lines ~max_addr
          ~shards:nshards ~index config)
  in
  (* per-shard epoch snapshots, most recent first; index [s] is written
     only by the one worker that owns shard [s], and read by the caller
     after the pool barrier *)
  let snaps = Array.make nshards [] in
  let feed_sequential f =
    match feed with
    | Feed_chunks g -> g f
    | Feed_stream stream -> Cell_trace.Stream.iter_chunks f stream
  in
  (if nshards = 1 then begin
     (* no partitioning, no pool: the fused loop plus one tag test for
        the epoch cut, so the shards=1 path tracks the fused number *)
     let slab = slabs.(0) in
     let cache = Mpcache.Shard.cache slab in
     feed_sequential (fun data n ->
         for i = 0 to n - 1 do
           let packed = Array.unsafe_get data i in
           if Cell_event.packed_is_access packed then begin
             let proc = Cell_event.packed_proc packed in
             let cell = Cell_event.packed_cell packed in
             let var = Cell_event.packed_var packed in
             if has_extra then begin
               let ex = extra.(var) in
               if Array.length ex > 0 && ex.(cell) >= 0 then
                 Mpcache.touch cache ~proc ~write:false ~addr:ex.(cell)
             end;
             Mpcache.touch cache ~proc
               ~write:(Cell_event.packed_write packed)
               ~addr:addr.(var).(cell)
           end
           else if Cell_event.packed_tag packed = Cell_event.tag_barrier_release
           then
             snaps.(0) <-
               Mpcache.copy_counts (Mpcache.counts cache) :: snaps.(0)
         done)
   end
   else begin
     let pool, own_pool =
       match pool with
       | Some p -> (p, false)
       | None -> (Par.Pool.create ~jobs:(min nshards (Par.default_jobs ())) (), true)
     in
     Fun.protect
       ~finally:(fun () -> if own_pool then Par.Pool.shutdown pool)
       (fun () ->
         let jobs = Par.Pool.jobs pool in
         let sh = Mpcache.sharding config in
         let buckets =
           Array.init jobs (fun _ -> Array.init nshards (fun _ -> buf_make ()))
         in
         (* [decode_tail w] rides on Phase B: workers that finish their
            drain early pick up decode work for upcoming blocks of a
            streamed trace (a no-op for in-memory chunks) *)
         let process_chunk ~decode_tail data n =
             Par.Pool.run pool (fun w ->
                 let row = buckets.(w) in
                 for s = 0 to nshards - 1 do
                   row.(s).n <- 0
                 done;
                 let lo = n * w / jobs and hi = n * (w + 1) / jobs in
                 for i = lo to hi - 1 do
                   let packed = Array.unsafe_get data i in
                   if Cell_event.packed_is_access packed then begin
                     let proc = Cell_event.packed_proc packed in
                     let cell = Cell_event.packed_cell packed in
                     let var = Cell_event.packed_var packed in
                     if has_extra then begin
                       let ex = extra.(var) in
                       if Array.length ex > 0 && ex.(cell) >= 0 then begin
                         let a = ex.(cell) in
                         buf_push
                           row.(Mpcache.shard_of_addr sh ~shards:nshards
                                  ~addr:a)
                           (item_pack ~proc ~write:false ~addr:a)
                       end
                     end;
                     let a = addr.(var).(cell) in
                     buf_push
                       row.(Mpcache.shard_of_addr sh ~shards:nshards ~addr:a)
                       (item_pack ~proc
                          ~write:(Cell_event.packed_write packed)
                          ~addr:a)
                   end
                   else if
                     Cell_event.packed_tag packed
                     = Cell_event.tag_barrier_release
                   then
                     for s = 0 to nshards - 1 do
                       buf_push row.(s) epoch_sentinel
                     done
                 done);
             Par.Pool.run pool (fun k ->
                 let s = ref k in
                 while !s < nshards do
                   let slab = slabs.(!s) in
                   let cache = Mpcache.Shard.cache slab in
                   for w = 0 to jobs - 1 do
                     let b = buckets.(w).(!s) in
                     let arr = b.b and m = b.n in
                     for i = 0 to m - 1 do
                       let item = Array.unsafe_get arr i in
                       if item >= 0 then
                         Mpcache.touch cache
                           ~proc:((item lsr 1) land 0xff)
                           ~write:(item land 1 = 1)
                           ~addr:(item lsr 9)
                       else
                         snaps.(!s) <-
                           Mpcache.copy_counts (Mpcache.counts cache)
                           :: snaps.(!s)
                     done
                   done;
                   s := !s + jobs
                 done;
                 decode_tail k)
         in
         match feed with
         | Feed_chunks g ->
           g (fun data n -> process_chunk ~decode_tail:(fun _ -> ()) data n)
         | Feed_stream stream ->
           (* Pipelined decode: a window of [wnd] block buffers is kept
              decoded ahead of the drain.  The prefill decodes blocks
              [0 .. wnd - 1] across the pool; thereafter Phase B of block
              [k] additionally decodes block [k + wnd] (whose slot was
              freed by Phase A of block [k]) on whichever worker drains
              its shards first — so decode overlaps the coherence
              simulation instead of serializing ahead of it.  Claims go
              through a bounded CAS so a block is decoded exactly once;
              the Pool.run barrier publishes every decoded buffer before
              the next Phase A reads it.  Corruption raised by a worker
              decode re-raises at the caller after the barrier. *)
           let nb = Cell_trace.Stream.nblocks stream in
           if nb > 0 then begin
             let wnd = min nb (jobs + 1) in
             let mbe = Cell_trace.Stream.max_block_events stream in
             let bufs = Array.init wnd (fun _ -> Array.make mbe 0) in
             let lens = Array.make wnd 0 in
             let next_decode = Atomic.make 0 in
             let rec try_claim limit =
               let k = Atomic.get next_decode in
               if k >= limit then -1
               else if Atomic.compare_and_set next_decode k (k + 1) then k
               else try_claim limit
             in
             let decode_upto limit _w =
               let rec go () =
                 let k = try_claim limit in
                 if k >= 0 then begin
                   lens.(k mod wnd) <-
                     Cell_trace.Stream.decode_block stream k bufs.(k mod wnd);
                   go ()
                 end
               in
               go ()
             in
             Par.Pool.run pool (decode_upto wnd);
             for k = 0 to nb - 1 do
               process_chunk
                 ~decode_tail:(decode_upto (min nb (k + 1 + wnd)))
                 bufs.(k mod wnd)
                 lens.(k mod wnd)
             done
           end)
   end);
  let counts = Mpcache.merged_counts (Array.map Mpcache.Shard.cache slabs) in
  (* telescoping per-shard snapshot deltas; the tail epoch (after the
     last release — or the whole run when there is none) closes against
     the final counts, so the epochs always sum to the totals *)
  let snap_arrays = Array.map (fun l -> Array.of_list (List.rev l)) snaps in
  let nrel = Array.length snap_arrays.(0) in
  Array.iter
    (fun sn ->
      if Array.length sn <> nrel then
        invalid_arg "Replay.simulate_sharded: shards saw different epoch counts")
    snap_arrays;
  let epochs = Array.init (nrel + 1) (fun _ -> Mpcache.zero_counts ()) in
  for s = 0 to nshards - 1 do
    let sn = snap_arrays.(s) in
    let prev = ref (Mpcache.zero_counts ()) in
    for e = 0 to nrel - 1 do
      Mpcache.add_into epochs.(e) (Mpcache.sub_counts sn.(e) !prev);
      prev := sn.(e)
    done;
    let final = Mpcache.counts (Mpcache.Shard.cache slabs.(s)) in
    Mpcache.add_into epochs.(nrel) (Mpcache.sub_counts final !prev)
  done;
  { shards = slabs; counts; epochs }

let simulate_sharded ?pool ?track_blocks ?track_pairs ?track_lines trace
    ~shards ~layout ~config =
  run_sharded ~shards ?pool ?track_blocks ?track_pairs ?track_lines
    ~vars:(Cell_trace.vars trace) ~layout ~config
    (Feed_chunks
       (fun f -> f (Cell_trace.unsafe_data trace) (Cell_trace.length trace)))

let simulate_sharded_stream ?pool ?track_blocks ?track_pairs ?track_lines
    stream ~shards ~layout ~config =
  run_sharded ~shards ?pool ?track_blocks ?track_pairs ?track_lines
    ~vars:(Cell_trace.Stream.vars stream) ~layout ~config (Feed_stream stream)
