module Layout = Fs_layout.Layout
module Cell_event = Fs_trace.Cell_event
module Cell_trace = Fs_trace.Cell_trace
module Cell_listener = Fs_trace.Cell_listener
module Listener = Fs_trace.Listener

let vars_of prog =
  Array.of_list (List.map fst prog.Fs_ir.Ast.globals)

(* ------------------------------------------------------------------ *)
(* The address oracle: per variable id, the cell -> address map of one
   realized layout, plus the injected-pointer-cell map for indirection. *)

type oracle = {
  addr : int array array;
  extra : int array array;
}

let oracle layout ~vars =
  let lookup name =
    match Layout.lookup layout name with
    | vl -> vl
    | exception Not_found ->
      invalid_arg ("Replay.oracle: layout has no variable " ^ name)
  in
  {
    addr = Array.map (fun name -> (lookup name).Layout.addr) vars;
    extra = Array.map (fun name -> (lookup name).Layout.extra) vars;
  }

let translating o (l : Listener.t) : Cell_listener.t =
  {
    access =
      (fun ~proc ~write ~var ~cell ->
        (* an indirection layout interposes a pointer cell: the read of the
           pointer happens before the data reference it redirects *)
        let extra = o.extra.(var) in
        if Array.length extra > 0 && extra.(cell) >= 0 then
          l.Listener.access ~proc ~write:false ~addr:extra.(cell);
        l.Listener.access ~proc ~write ~addr:o.addr.(var).(cell));
    work = l.Listener.work;
    barrier_arrive = l.Listener.barrier_arrive;
    barrier_release = l.Listener.barrier_release;
    lock_wait =
      (fun ~proc ~var ~cell ->
        l.Listener.lock_wait ~proc ~addr:o.addr.(var).(cell));
    lock_grant =
      (fun ~proc ~var ~cell ~from ->
        l.Listener.lock_grant ~proc ~addr:o.addr.(var).(cell) ~from);
  }

(* ------------------------------------------------------------------ *)

let replay trace ~layout ~listener =
  let o = oracle layout ~vars:(Cell_trace.vars trace) in
  let cells = translating o listener in
  Cell_trace.deliver trace cells

let replay_to_sink trace ~layout ~sink =
  replay trace ~layout ~listener:(Listener.of_sink sink)
