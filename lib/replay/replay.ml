module Layout = Fs_layout.Layout
module Cell_event = Fs_trace.Cell_event
module Cell_trace = Fs_trace.Cell_trace
module Cell_listener = Fs_trace.Cell_listener
module Listener = Fs_trace.Listener
module Mpcache = Fs_cache.Mpcache

let vars_of prog =
  Array.of_list (List.map fst prog.Fs_ir.Ast.globals)

(* ------------------------------------------------------------------ *)
(* The address oracle: per variable id, the cell -> address map of one
   realized layout, plus the injected-pointer-cell map for indirection. *)

type oracle = {
  addr : int array array;
  extra : int array array;
}

let oracle layout ~vars =
  let lookup name =
    match Layout.lookup layout name with
    | vl -> vl
    | exception Not_found ->
      invalid_arg ("Replay.oracle: layout has no variable " ^ name)
  in
  {
    addr = Array.map (fun name -> (lookup name).Layout.addr) vars;
    extra = Array.map (fun name -> (lookup name).Layout.extra) vars;
  }

let translating o (l : Listener.t) : Cell_listener.t =
  {
    access =
      (fun ~proc ~write ~var ~cell ->
        (* an indirection layout interposes a pointer cell: the read of the
           pointer happens before the data reference it redirects *)
        let extra = o.extra.(var) in
        if Array.length extra > 0 && extra.(cell) >= 0 then
          l.Listener.access ~proc ~write:false ~addr:extra.(cell);
        l.Listener.access ~proc ~write ~addr:o.addr.(var).(cell));
    work = l.Listener.work;
    barrier_arrive = l.Listener.barrier_arrive;
    barrier_release = l.Listener.barrier_release;
    lock_wait =
      (fun ~proc ~var ~cell ->
        l.Listener.lock_wait ~proc ~addr:o.addr.(var).(cell));
    lock_grant =
      (fun ~proc ~var ~cell ~from ->
        l.Listener.lock_grant ~proc ~addr:o.addr.(var).(cell) ~from);
  }

(* ------------------------------------------------------------------ *)

let replay trace ~layout ~listener =
  let o = oracle layout ~vars:(Cell_trace.vars trace) in
  let cells = translating o listener in
  Cell_trace.deliver trace cells

let replay_to_sink trace ~layout ~sink =
  replay trace ~layout ~listener:(Listener.of_sink sink)

(* ------------------------------------------------------------------ *)
(* The fused hot path: packed trace -> address oracle -> cache, with no
   event unpacking, no listener dispatch, and no per-event allocation.
   Only Access events reach the cache — exactly what the listener path
   delivers through [Listener.of_sink], where every other hook is a
   no-op — so the two paths produce identical counts (property-tested
   over every workload). *)

(* The instrumented twin of the fused loop below.  It is a separate body
   (not a [match] inside the loop) so the recorder-disabled path pays
   nothing: no flight means the original loops run untouched.  The event
   stream is walked in interval-sized chunks — the inner loops are the
   original bodies verbatim, and all sampling work (an allocation-free
   ring deposit, plus a backward scan for the most recent access to
   attribute a current block) happens once per chunk boundary, so the
   per-event cost of the recorder is exactly zero. *)
let simulate_recorded trace ~layout ~cache ~(flight : Flight.t) =
  let o = oracle layout ~vars:(Cell_trace.vars trace) in
  let addr = o.addr and extra = o.extra in
  let data = Cell_trace.unsafe_data trace in
  let n = Cell_trace.length trace in
  let has_extra = Array.exists (fun ex -> Array.length ex > 0) extra in
  let bshift =
    (* block size is a power of two (enforced by Mpcache) *)
    let b = (Mpcache.config cache).Mpcache.block in
    let s = ref 0 in
    while 1 lsl !s < b do incr s done;
    !s
  in
  let counts = Mpcache.counts cache in
  let interval = Flight.interval flight in
  (* the data address of the most recent access at or before event [i];
     0 when no access has happened yet.  Off the hot path: called once
     per sample, and the scan almost always stops within a few events. *)
  let last_access_addr i =
    let rec find i =
      if i < 0 then 0
      else
        let packed = Array.unsafe_get data i in
        if Cell_event.packed_is_access packed then
          addr.(Cell_event.packed_var packed).(Cell_event.packed_cell packed)
        else find (i - 1)
    in
    find i
  in
  Flight.start flight;
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + interval) in
    if has_extra then
      for i = !lo to hi - 1 do
        let packed = Array.unsafe_get data i in
        if Cell_event.packed_is_access packed then begin
          let proc = Cell_event.packed_proc packed in
          let cell = Cell_event.packed_cell packed in
          let var = Cell_event.packed_var packed in
          let ex = extra.(var) in
          if Array.length ex > 0 && ex.(cell) >= 0 then
            Mpcache.touch cache ~proc ~write:false ~addr:ex.(cell);
          Mpcache.touch cache ~proc
            ~write:(Cell_event.packed_write packed)
            ~addr:addr.(var).(cell)
        end
      done
    else
      for i = !lo to hi - 1 do
        let packed = Array.unsafe_get data i in
        if Cell_event.packed_is_access packed then
          Mpcache.touch cache
            ~proc:(Cell_event.packed_proc packed)
            ~write:(Cell_event.packed_write packed)
            ~addr:addr.(Cell_event.packed_var packed).(Cell_event.packed_cell
                                                         packed)
      done;
    lo := hi;
    (* the final partial chunk also deposits a sample, so short traces
       still record their end state *)
    Flight.sample flight ~at_event:(hi - 1) ~counts
      ~block:(last_access_addr (hi - 1) lsr bshift)
  done

let simulate ?flight trace ~layout ~cache =
  match flight with
  | Some fr -> simulate_recorded trace ~layout ~cache ~flight:fr
  | None ->
  let o = oracle layout ~vars:(Cell_trace.vars trace) in
  let addr = o.addr and extra = o.extra in
  let data = Cell_trace.unsafe_data trace in
  let n = Cell_trace.length trace in
  (* only indirection layouts inject pointer cells; when none did, the
     whole per-event pointer-read check can be dropped from the loop *)
  let has_extra = Array.exists (fun ex -> Array.length ex > 0) extra in
  if has_extra then
    for i = 0 to n - 1 do
      let packed = Array.unsafe_get data i in
      if Cell_event.packed_is_access packed then begin
        let proc = Cell_event.packed_proc packed in
        let cell = Cell_event.packed_cell packed in
        let var = Cell_event.packed_var packed in
        let ex = extra.(var) in
        (* an indirection layout interposes a pointer cell: the read of
           the pointer happens before the data reference it redirects *)
        if Array.length ex > 0 && ex.(cell) >= 0 then
          Mpcache.touch cache ~proc ~write:false ~addr:ex.(cell);
        Mpcache.touch cache ~proc
          ~write:(Cell_event.packed_write packed)
          ~addr:addr.(var).(cell)
      end
    done
  else
    for i = 0 to n - 1 do
      let packed = Array.unsafe_get data i in
      if Cell_event.packed_is_access packed then
        Mpcache.touch cache
          ~proc:(Cell_event.packed_proc packed)
          ~write:(Cell_event.packed_write packed)
          ~addr:addr.(Cell_event.packed_var packed).(Cell_event.packed_cell
                                                       packed)
    done
