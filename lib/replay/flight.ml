module C = Fs_cache.Mpcache
module Json = Fs_obs.Json

(* Parallel arrays rather than a record ring: taking a sample writes a
   handful of unboxed ints/floats and allocates nothing, so sampling
   never perturbs the loop it is observing through the GC. *)
type t = {
  interval : int;
  cap : int;
  at_event : int array;
  wall : float array;
  reads : int array;
  writes : int array;
  cold : int array;
  repl : int array;
  true_sh : int array;
  false_sh : int array;
  cur_block : int array;
  mutable taken : int;  (* samples ever taken; the ring keeps the last cap *)
  mutable t0 : float;
}

let create ?(capacity = 256) ?(interval = 4096) () =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  if interval <= 0 then invalid_arg "Flight.create: interval must be positive";
  {
    interval;
    cap = capacity;
    at_event = Array.make capacity 0;
    wall = Array.make capacity 0.0;
    reads = Array.make capacity 0;
    writes = Array.make capacity 0;
    cold = Array.make capacity 0;
    repl = Array.make capacity 0;
    true_sh = Array.make capacity 0;
    false_sh = Array.make capacity 0;
    cur_block = Array.make capacity 0;
    taken = 0;
    t0 = 0.0;
  }

let interval t = t.interval

let start t =
  t.taken <- 0;
  t.t0 <- Unix.gettimeofday ()

let sample t ~at_event ~counts ~block =
  let i = t.taken mod t.cap in
  t.at_event.(i) <- at_event;
  t.wall.(i) <- Unix.gettimeofday () -. t.t0;
  t.reads.(i) <- counts.C.reads;
  t.writes.(i) <- counts.C.writes;
  t.cold.(i) <- counts.C.cold;
  t.repl.(i) <- counts.C.repl;
  t.true_sh.(i) <- counts.C.true_sh;
  t.false_sh.(i) <- counts.C.false_sh;
  t.cur_block.(i) <- block;
  t.taken <- t.taken + 1

(* ------------------------------------------------------------------ *)

type sample = {
  s_event : int;
  s_wall : float;
  s_reads : int;
  s_writes : int;
  s_cold : int;
  s_repl : int;
  s_true_sh : int;
  s_false_sh : int;
  s_block : int;
}

let retained t = min t.taken t.cap

let samples t =
  let n = retained t in
  let first = t.taken - n in
  List.init n (fun k ->
      let i = (first + k) mod t.cap in
      {
        s_event = t.at_event.(i);
        s_wall = t.wall.(i);
        s_reads = t.reads.(i);
        s_writes = t.writes.(i);
        s_cold = t.cold.(i);
        s_repl = t.repl.(i);
        s_true_sh = t.true_sh.(i);
        s_false_sh = t.false_sh.(i);
        s_block = t.cur_block.(i);
      })

type digest = {
  d_interval : int;
  d_taken : int;
  d_retained : int;
  d_events : int;       (* event index of the last sample *)
  d_wall : float;       (* wall seconds at the last sample *)
  d_rate : float;       (* Mevents/s over the whole recording *)
  d_peak_rate : float;  (* max Mevents/s between consecutive samples *)
  d_cold : int;
  d_repl : int;
  d_true_sh : int;
  d_false_sh : int;
  d_hot_block : int;    (* most frequent current block, -1 if no samples *)
  d_hot_share : float;
}

let digest t =
  match samples t with
  | [] ->
    { d_interval = t.interval; d_taken = 0; d_retained = 0; d_events = 0;
      d_wall = 0.0; d_rate = 0.0; d_peak_rate = 0.0; d_cold = 0; d_repl = 0;
      d_true_sh = 0; d_false_sh = 0; d_hot_block = -1; d_hot_share = 0.0 }
  | first :: _ as ss ->
    let last = List.nth ss (List.length ss - 1) in
    let rate ev dt = if dt > 0.0 then float_of_int ev /. dt /. 1e6 else 0.0 in
    let peak = ref (rate (first.s_event + 1) first.s_wall) in
    let rec scan = function
      | a :: (b :: _ as rest) ->
        let r = rate (b.s_event - a.s_event) (b.s_wall -. a.s_wall) in
        if r > !peak then peak := r;
        scan rest
      | _ -> ()
    in
    scan ss;
    let freq = Hashtbl.create 64 in
    List.iter
      (fun s ->
        Hashtbl.replace freq s.s_block
          (1 + Option.value ~default:0 (Hashtbl.find_opt freq s.s_block)))
      ss;
    let hot_block, hot_n =
      Hashtbl.fold
        (fun b n ((_, bn) as best) -> if n > bn then (b, n) else best)
        freq (-1, 0)
    in
    {
      d_interval = t.interval;
      d_taken = t.taken;
      d_retained = List.length ss;
      d_events = last.s_event;
      d_wall = last.s_wall;
      d_rate = rate last.s_event last.s_wall;
      d_peak_rate = !peak;
      d_cold = last.s_cold;
      d_repl = last.s_repl;
      d_true_sh = last.s_true_sh;
      d_false_sh = last.s_false_sh;
      d_hot_block = hot_block;
      d_hot_share = float_of_int hot_n /. float_of_int (List.length ss);
    }

let render t =
  let d = digest t in
  if d.d_taken = 0 then "flight recorder: no samples (trace shorter than one interval)\n"
  else begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf
         "flight recorder: %d sample(s) every %d events (%d retained), \
          %d events in %.3fs — %.1f Mevents/s (peak %.1f)\n"
         d.d_taken t.interval d.d_retained d.d_events d.d_wall d.d_rate
         d.d_peak_rate);
    Buffer.add_string buf
      (Printf.sprintf "hottest sampled block: 0x%x (%s of samples)\n"
         d.d_hot_block
         (Fs_util.Table.pct d.d_hot_share));
    Buffer.add_string buf "miss mix at last sample:\n";
    Buffer.add_string buf
      (Fs_obs.Heatmap.bars
         [ ("cold", d.d_cold); ("replacement", d.d_repl);
           ("true sharing", d.d_true_sh); ("false sharing", d.d_false_sh) ]);
    Buffer.contents buf
  end

let sample_to_json s =
  Json.Obj
    [ ("event", Json.Int s.s_event);
      ("wall_s", Json.float s.s_wall);
      ("reads", Json.Int s.s_reads);
      ("writes", Json.Int s.s_writes);
      ("cold", Json.Int s.s_cold);
      ("replacement", Json.Int s.s_repl);
      ("true_sharing", Json.Int s.s_true_sh);
      ("false_sharing", Json.Int s.s_false_sh);
      ("block", Json.Int s.s_block) ]

let to_json t =
  let d = digest t in
  Json.Obj
    [ ("interval", Json.Int d.d_interval);
      ("samples_taken", Json.Int d.d_taken);
      ("samples_retained", Json.Int d.d_retained);
      ("events", Json.Int d.d_events);
      ("wall_s", Json.float d.d_wall);
      ("mevents_per_s", Json.float d.d_rate);
      ("peak_mevents_per_s", Json.float d.d_peak_rate);
      ("miss_mix",
       Json.Obj
         [ ("cold", Json.Int d.d_cold);
           ("replacement", Json.Int d.d_repl);
           ("true_sharing", Json.Int d.d_true_sh);
           ("false_sharing", Json.Int d.d_false_sh) ]);
      ("hot_block", Json.Int d.d_hot_block);
      ("hot_block_share", Json.float d.d_hot_share);
      ("samples", Json.List (List.map sample_to_json (samples t))) ]
