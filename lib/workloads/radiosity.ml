(** Radiosity — equilibrium distribution of light (SPLASH2; Singh, Gupta,
    Levoy, IEEE Computer 1994).

    Iterative gathering: each round, patches are handed out through a
    task queue; the owner of a patch gathers the form-factor-weighted
    radiosity of every other patch into {e its own} contribution slot for
    that patch ([contrib\[patch*P + pid\]]), and a combining pass then
    folds the slots back into the patch radiosities.

    Compiler behaviour reproduced (Table 2: group & transpose 85.6%,
    pad & align 1.0%, locks 6.8%):
    - [contrib] — per-process slots interleaved behind a {e dynamic} task
      index: the descriptors are congruence sections ([≡ pid mod P]),
      still provably disjoint — group & transpose (regrouped strided);
    - [patch] — combined in contiguous per-process chunks — group &
      transpose (chunked);
    - [stats] — a small record of convergence data written by every
      process every round — pad & align (the paper's 1.0%);
    - [qlock] sits right next to the queue counters — lock padding.

    The programmer (SPLASH2) version groups and transposes [contrib] but
    leaves the lock co-allocated with the queue counters and the stats
    record unpadded — "Radiosity, LocusRoute and MP3D suffered from both"
    (Section 5). *)

open Fs_ir.Dsl
open Wl_common

let rounds = 5
let batch = 8

let build ~nprocs ~scale =
  let m = 48 * scale in  (* patches *)
  let st =
    { Fs_ir.Ast.sname = "st";
      fields = [ ("iters", int_t); ("maxerr", int_t); ("conv", int_t) ] }
  in
  let slot t q = (t *% i nprocs) +% q in
  Fs_ir.Validate.validate_exn
    (program ~name:"radiosity" ~structs:[ st ]
       ~globals:
         [ ("rad", arr int_t m);
           ("area", arr int_t m);
           ("contrib", arr int_t (m * nprocs));
           ("qhead", int_t);
           ("qtail", int_t);
           ("qlock", lock_t);
           ("stats", struct_t "st");
           ("checksum", int_t);
         ]
       [ fn "main" []
           [ master
               [ decl "s" (i 16180);
                 sfor "j" (i 0) (i m)
                   [ lcg_next "s";
                     (v "rad").%(p "j") <-- (lcg_mod "s" 100 +% i 1);
                     lcg_next "s";
                     (v "area").%(p "j") <-- (lcg_mod "s" 20 +% i 1) ] ];
             barrier;
             sfor "round" (i 0) (i rounds)
               ([ master [ (v "qhead") <-- i 0; (v "qtail") <-- i m ];
                  barrier;
                  (* gather: grab patches from the queue in batches *)
                  decl "more" (i 1);
                  swhile (p "more")
                    [ lock (v "qlock");
                      decl "t0" (ld (v "qhead"));
                      decl "lim" (min_ (p "t0" +% i batch) (ld (v "qtail")));
                      sif (p "t0" <% p "lim")
                        [ (v "qhead") <-- p "lim" ]
                        [ set "more" (i 0) ];
                      unlock (v "qlock");
                      when_ (p "more")
                        [ sfor "t" (p "t0") (p "lim")
                            [ decl "acc" (i 0);
                              (* only the patches visible from t matter *)
                              sfor "k" (i 0) (i (m / 8))
                                (spin 30
                                 @ [ decl "u" ((p "t" +% p "k" +% p "round") %% i m);
                                     set "acc"
                                       (p "acc"
                                        +% (ld (v "rad").%(p "u")
                                            *% ld (v "area").%(p "u")
                                            /% (p "t" +% p "u" +% i 1))) ]);
                              (* own contribution slot for this patch *)
                              bump ((v "contrib").%(slot (p "t") pdv)) (p "acc") ] ] ];
                  barrier ]
                (* combine: fold every process's slots into the patches *)
                @ chunked ~idx:"j" ~nprocs ~n:m (fun j ->
                      [ decl "s" (i 0);
                        sfor "q" (i 0) (i nprocs)
                          [ set "s" (p "s" +% ld (v "contrib").%(slot j (p "q"))) ];
                        decl "old" (ld (v "rad").%(j));
                        (v "rad").%(j) <-- ((p "old" +% (p "s" /% i 16)) %% i 100003);
                        (* convergence statistics: written by everyone *)
                        decl "d" (max_ (p "old" -% ld (v "rad").%(j))
                                    (ld (v "rad").%(j) -% p "old"));
                        (v "stats").%{"maxerr"}
                        <-- max_ (ld (v "stats").%{"maxerr"}) (p "d");
                        bump ((v "stats").%{"iters"}) (i 1) ])
                @ [ barrier;
                    (* each process clears its own slots for the next round *)
                    sfor "t" (i 0) (i m) [ (v "contrib").%(slot (p "t") pdv) <-- i 0 ];
                    barrier ]);
             master
               [ decl "sum" (i 0);
                 sfor "j" (i 0) (i m)
                   [ set "sum" ((p "sum" +% ld (v "rad").%(p "j")) %% i 1000003) ];
                 (v "checksum") <-- (p "sum" +% ld (v "stats").%{"iters"}) ] ]
       ])

let spec =
  {
    Workload.name = "radiosity";
    description = "Equilibrium distribution of light";
    lines_of_c = 10908;
    versions = [ Workload.N; Workload.C; Workload.P ];
    dynamic = false;
    fig3_procs = 12;
    default_scale = 2;
    build;
    programmer_plan =
      Some
        (fun ~nprocs ~scale:_ ->
          (* the SPLASH2 source groups the contribution slots by processor,
             but the queue lock stays co-allocated with the counters and the
             statistics record is unpadded *)
          [ Fs_layout.Plan.Regroup { var = "contrib"; ways = nprocs; chunked = false } ]);
    notes =
      "Per-process contribution slots behind a dynamic task queue \
       (congruence sections; group & transpose), chunked combining pass \
       (group & transpose), convergence stats written by all (pad & \
       align), queue lock packed with the queue counters (lock padding).";
  }
