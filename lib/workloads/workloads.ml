(* [all] is the static Table 1 suite — every baseline (Figure 3,
   Table 2, speedups) ranges over it unchanged.  The dynamic
   (task-parallel) family lives in its own list so adding workloads
   cannot silently shift the paper's numbers. *)
let all =
  [ Maxflow.spec;
    Pverify.spec;
    Topopt.spec;
    Fmm.spec;
    Radiosity.spec;
    Raytrace.spec;
    Locusroute.spec;
    Mp3d.spec;
    Pthor.spec;
    Water.spec ]

let dynamic = [ Fibtree.spec; Taskbag.spec; Stencil.spec; Dstress.spec ]
let every = all @ dynamic
let find name = Workload.find every name
let simulated () = Workload.simulated all
