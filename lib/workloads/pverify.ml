(** Pverify — parallel logic verification (Ma, Devadas, Wei,
    Sangiovanni-Vincentelli, DAC'87).

    Processes verify a combinational circuit against test vectors: vectors
    are distributed round-robin; for each vector a process evaluates every
    gate in topological order.  The per-process state of the evaluation —
    a gate's value and visit count {e for this process} — is embedded in
    the gate records as PDV-indexed field arrays, the data structure the
    paper singles out for Pverify: laid out to match the natural way of
    thinking about the algorithm, and disastrous for false sharing
    (adjacent processes' values share every gate's cache lines).

    Compiler behaviour reproduced (Table 2: indirection 81.6%, group &
    transpose 6.4%, locks 3.1%):
    - [gates.val]/[gates.visited] — per-process fields embedded in a record
      array — indirection;
    - [done_cnt]/[fail_cnt] — per-process counter vectors — grouped and
      transposed;
    - the result lock, packed next to the counters — lock padding.

    The programmer version pads the gate records to block boundaries but
    misses both indirection and group & transpose (Section 5: "the
    programmer missed opportunities to apply group & transpose in ...
    Pverify ...; indirection in Pverify ..."). *)

open Fs_ir.Dsl
open Wl_common

let build ~nprocs ~scale =
  let n = 48 * scale in      (* gates *)
  let nvec = 24 * scale in   (* test vectors, fixed: strong scaling *)
  let gate =
    { Fs_ir.Ast.sname = "gate";
      fields =
        [ ("typ", int_t);
          ("in0", int_t);
          ("in1", int_t);
          ("val", arr int_t nprocs);
          ("visited", arr int_t nprocs);
        ] }
  in
  let g_ fld = (v "gates").%(p "g").%{fld} in
  Fs_ir.Validate.validate_exn
    (program ~name:"pverify" ~structs:[ gate ]
       ~globals:
         [ ("gates", arr (struct_t "gate") n);
           ("done_cnt", arr int_t nprocs);
           ("fail_cnt", arr int_t nprocs);
           ("mismatch", int_t);
           ("golden", arr int_t 32);
           ("rlock", lock_t);
         ]
       [ fn "main" []
           ([ master
                [ decl "s" (i 271828);
                  sfor "g" (i 0) (i n)
                    [ lcg_next "s";
                      g_ "typ" <-- lcg_mod "s" 4;
                      lcg_next "s";
                      (* inputs come from earlier gates: topological order *)
                      g_ "in0" <-- (p "s" %% max_ (p "g") (i 1));
                      lcg_next "s";
                      g_ "in1" <-- (p "s" %% max_ (p "g") (i 1)) ] ];
              barrier ]
            @ interleaved ~idx:"vec" ~nprocs ~n:nvec (fun vec ->
                  [ sfor "g" (i 0) (i n)
                      (spin 120
                       @ [ decl "t" (ld (g_ "typ"));
                        decl "a" (i 0);
                        decl "b" (i 0);
                        sif (p "g" <% i 2)
                          [ (* primary inputs are bits of the vector id *)
                            set "a" ((vec /% (p "g" +% i 1)) %% i 2);
                            set "b" ((vec /% (p "g" +% i 2)) %% i 2) ]
                          [ decl "i0" (ld (g_ "in0"));
                            decl "i1" (ld (g_ "in1"));
                            set "a" (ld (v "gates").%(p "i0").%{"val"}.%(pdv));
                            set "b" (ld (v "gates").%(p "i1").%{"val"}.%(pdv)) ];
                        decl "r" (i 0);
                        sif (p "t" ==% i 0)
                          [ set "r" (min_ (p "a") (p "b")) ]          (* and *)
                          [ sif (p "t" ==% i 1)
                              [ set "r" (max_ (p "a") (p "b")) ]      (* or *)
                              [ sif (p "t" ==% i 2)
                                  [ set "r" ((p "a" +% p "b") %% i 2) ]  (* xor *)
                                  [ set "r" (i 1 -% min_ (p "a") (p "b")) ] ] ]; (* nand *)
                        (g_ "val").%(pdv) <-- p "r";
                        bump ((g_ "visited").%(pdv)) (i 1);
                        bump ((v "done_cnt").%(pdv)) (i 1) ]);
                    when_ (ld (v "gates").%(i (n - 1)).%{"val"}.%(pdv) ==% i 1)
                      [ bump ((v "fail_cnt").%(pdv)) (i 1) ];
                    (* serial verification against the golden table: the
                       result log is checked one vector at a time *)
                    lock (v "rlock");
                    decl "gsum" (i 0);
                    sfor "gg" (i 0) (i 32)
                      (spin 50
                       @ [ set "gsum" (p "gsum" +% ld (v "golden").%(p "gg")) ]);
                    (v "golden").%(vec %% i 32)
                    <-- ((p "gsum" +% vec) %% i 65537);
                    unlock (v "rlock") ])
            @ [ barrier;
                lock (v "rlock");
                bump (v "mismatch") (ld (v "fail_cnt").%(pdv));
                unlock (v "rlock") ])
       ])

let spec =
  {
    Workload.name = "pverify";
    description = "Logic verification";
    lines_of_c = 2759;
    versions = [ Workload.N; Workload.C; Workload.P ];
    dynamic = false;
    fig3_procs = 12;
    default_scale = 2;
    build;
    programmer_plan =
      Some
        (fun ~nprocs:_ ~scale:_ ->
          (* the programmer padded the gate records and the lock, but missed
             the indirection on the embedded per-process fields and the
             group & transpose on the counter vectors *)
          [ Fs_layout.Plan.Pad_align { var = "gates"; element = true };
            Fs_layout.Plan.Pad_locks ]);
    notes =
      "Per-process value/visit fields embedded in gate records \
       (indirection), per-process counter vectors (group & transpose), \
       result lock packed with the counters (lock padding).";
  }
