(** Fmm — adaptive fast multipole method (Singh, Holt, Hennessy, Gupta,
    Supercomputing'93; SPLASH2).

    N-body force evaluation with multipole expansions: bodies are
    partitioned contiguously across processes; each round the processes
    accumulate their bodies into per-process partial expansions, combine
    them, and apply the combined field back to their bodies.  A spatial
    cell structure with per-cell locks counts the bodies per cell during
    the build phase.

    Compiler behaviour reproduced (Table 2: group & transpose 84.8%,
    locks 6.0%, nothing else):
    - [mpole]/[comb] — per-process expansion slots interleaved
      [term*P + pid] — group & transpose (regrouped strided);
    - [acc]/[vel] — written in contiguous per-process chunks — group &
      transpose (regrouped chunked, padding the chunk seams);
    - [cells.cnt] is touched only during the short build phase, falls
      below the hotness threshold and stays put; its per-cell locks are
      extracted and padded by the always-on lock padding.

    The programmer (SPLASH2) version has the easily identifiable
    per-process arrays organized by processor, but leaves the interleaved
    expansion slots and the packed cell locks — which is why its maximum
    speedup equals the unoptimized program's in Table 3 (16.4 at 20
    processors) while the compiler version keeps scaling (33.6 at 48+). *)

open Fs_ir.Dsl
open Wl_common

let terms = 12
let rounds = 8

let build ~nprocs ~scale =
  let n = 96 * scale in  (* bodies *)
  let m = 32 in          (* spatial cells *)
  let fcell =
    { Fs_ir.Ast.sname = "fcell";
      fields = [ ("cnt", int_t); ("clock", lock_t) ] }
  in
  let mp t q = (t *% i nprocs) +% q in
  Fs_ir.Validate.validate_exn
    (program ~name:"fmm" ~structs:[ fcell ]
       ~globals:
         [ ("bx", arr int_t n);
           ("bm", arr int_t n);
           ("acc", arr int_t n);
           ("vel", arr int_t n);
           ("mpole", arr int_t (terms * nprocs));
           ("comb", arr int_t terms);
           ("cells", arr (struct_t "fcell") m);
           ("checksum", int_t);
         ]
       [ fn "main" []
           ([ master
                [ decl "s" (i 31415);
                  sfor "b" (i 0) (i n)
                    [ lcg_next "s";
                      (v "bx").%(p "b") <-- lcg_mod "s" 1024;
                      lcg_next "s";
                      (v "bm").%(p "b") <-- (lcg_mod "s" 9 +% i 1) ] ];
              barrier ]
            (* build: count bodies per spatial cell, under per-cell locks *)
            @ chunked ~idx:"b" ~nprocs ~n (fun b ->
                  [ when_ (b %% i 16 ==% i 0)
                      [ decl "c" (ld (v "bx").%(b) %% i m);
                        lock ((v "cells").%(p "c").%{"clock"});
                        incr_ ((v "cells").%(p "c").%{"cnt"});
                        unlock ((v "cells").%(p "c").%{"clock"}) ] ])
            @ [ barrier;
                (* upward passes: accumulate own bodies into own slots *)
                sfor "t" (i 0) (i terms) [ (v "mpole").%(mp (p "t") pdv) <-- i 0 ];
                sfor "round" (i 0) (i rounds)
                  [ sfor "t" (i 0) (i terms)
                      ([ decl "acc_t" (i 0) ]
                       @ chunked ~idx:"b" ~nprocs ~n (fun b ->
                             spin 8
                             @ [ set "acc_t"
                                   (p "acc_t"
                                    +% ((ld (v "bx").%(b) *% ld (v "bm").%(b))
                                        /% (p "t" +% p "round" +% i 1))) ])
                       @ [ bump ((v "mpole").%(mp (p "t") pdv)) (p "acc_t") ]) ];
                barrier;
                (* combine, striped: each term has one combining process *)
                sfor "t" (i 0) (i terms)
                  [ when_ (pdv ==% (p "t" %% i (min nprocs terms)))
                      [ decl "s" (i 0);
                        sfor "q" (i 0) (i nprocs)
                          [ set "s" (p "s" +% ld (v "mpole").%(mp (p "t") (p "q"))) ];
                        (v "comb").%(p "t") <-- p "s" ] ];
                barrier;
                (* downward passes: apply the field to own bodies *)
                sfor "round" (i 0) (i rounds)
                  (chunked ~idx:"b" ~nprocs ~n (fun b ->
                       [ decl "f" (i 0);
                         sfor "t" (i 0) (i terms)
                           (spin 6
                            @ [ set "f"
                                  (p "f" +% (ld (v "comb").%(p "t") /% (p "t" +% i 1))) ]);
                         (v "acc").%(b) <-- ((p "f" +% p "round") %% i 4096);
                         bump ((v "vel").%(b)) (ld (v "acc").%(b) /% i 16) ]));
                barrier ]
            @ [ master
                  [ decl "sum" (i 0);
                    sfor "b" (i 0) (i n)
                      [ set "sum" ((p "sum" +% ld (v "vel").%(p "b")) %% i 1000003) ];
                    (v "checksum") <-- p "sum" ] ])
       ])

let spec =
  {
    Workload.name = "fmm";
    description = "Fast multipole method (n-body)";
    lines_of_c = 4395;
    versions = [ Workload.N; Workload.C; Workload.P ];
    dynamic = false;
    fig3_procs = 12;
    default_scale = 5;
    build;
    programmer_plan =
      Some
        (fun ~nprocs ~scale:_ ->
          (* the easily identifiable per-body arrays were organized by
             processor in SPLASH2; the interleaved expansion slots and the
             packed cell locks were not *)
          [ Fs_layout.Plan.Regroup { var = "acc"; ways = nprocs; chunked = true };
            Fs_layout.Plan.Regroup { var = "vel"; ways = nprocs; chunked = true } ]);
    notes =
      "Interleaved per-process expansion slots (group & transpose, \
       strided), contiguous per-body chunks (group & transpose, chunked), \
       per-cell locks packed in the cell records (lock padding).";
  }
