(** Pthor — parallel distributed-time logic simulator (SPLASH; Soulé).

    Event-driven circuit simulation: each process owns an interleaved slice
    of the event list, evaluates the element each event targets, and posts
    follow-up events into its own slots.  Element state is read and written
    across processes under per-element locks — Pthor has substantial
    {e true} sharing, which is why neither version scales well in Table 3
    (compiler 2.8 at 4 processors, programmer 2.2 at 4).

    Expected behaviour:
    - [evq] — per-process event slots interleaved [k*P+pid] — group &
      transpose (the opportunity Section 5 says the Pthor programmer
      missed);
    - [elem] — element records written through event targets, scattered —
      pad & align per element (also missed by the programmer);
    - [elock] — per-element lock array — lock padding (the programmer did
      pad the locks). *)

open Fs_ir.Dsl
open Wl_common

let rounds = 6

let build ~nprocs ~scale =
  let nelem = 48 * scale in
  let nev = 96 * scale in  (* event slots *)
  let element =
    { Fs_ir.Ast.sname = "element";
      fields = [ ("state", int_t); ("delay", int_t); ("fanout", int_t) ] }
  in
  Fs_ir.Validate.validate_exn
    (program ~name:"pthor" ~structs:[ element ]
       ~globals:
         [ ("elem", arr (struct_t "element") nelem);
           ("evq", arr int_t nev);
           ("elock", arr lock_t nelem);
           ("now", int_t);
           ("processed", int_t);
           ("checksum", int_t);
         ]
       [ fn "main" []
           ([ master
                [ decl "s" (i 13579);
                  sfor "e" (i 0) (i nelem)
                    [ lcg_next "s";
                      (v "elem").%(p "e").%{"state"} <-- lcg_mod "s" 2;
                      lcg_next "s";
                      (v "elem").%(p "e").%{"delay"} <-- (lcg_mod "s" 7 +% i 1);
                      lcg_next "s";
                      (v "elem").%(p "e").%{"fanout"} <-- lcg_mod "s" nelem ];
                  sfor "q" (i 0) (i nev)
                    [ (v "evq").%(p "q") <-- (p "q" %% i nelem) ] ];
              barrier;
              sfor "round" (i 0) (i rounds)
                (interleaved ~idx:"k" ~nprocs ~n:nev (fun k ->
                     spin 40
                     @ [ (* pop own event slot *)
                         decl "target" (ld (v "evq").%(k));
                       (* evaluate the element under its lock *)
                       lock ((v "elock").%(p "target"));
                       decl "st" (ld (v "elem").%(p "target").%{"state"});
                       decl "nx" (ld (v "elem").%(p "target").%{"fanout"});
                       (v "elem").%(p "target").%{"state"}
                       <-- ((p "st" +% ld (v "elem").%(p "target").%{"delay"}) %% i 16);
                       unlock ((v "elock").%(p "target"));
                       (* post the follow-up event into the same own slot *)
                       (v "evq").%(k) <-- p "nx" ])
                 @ [ barrier ]) ]
            @ [ master
                  [ decl "sum" (i 0);
                    sfor "e" (i 0) (i nelem)
                      [ set "sum"
                          ((p "sum" +% ld (v "elem").%(p "e").%{"state"})
                           %% i 1000003) ];
                    (v "checksum") <-- p "sum" ] ])
       ])

let spec =
  {
    Workload.name = "pthor";
    description = "Circuit simulator";
    lines_of_c = 9420;
    versions = [ Workload.C; Workload.P ];
    dynamic = false;
    fig3_procs = 12;
    default_scale = 2;
    build;
    programmer_plan =
      Some
        (fun ~nprocs:_ ~scale:_ ->
          (* the programmer padded the locks but missed the event-slot
             group & transpose and the element padding (Section 5) *)
          [ Fs_layout.Plan.Pad_locks ]);
    notes =
      "Interleaved per-process event slots (group & transpose), element \
       records written through event targets under per-element locks \
       (pad & align + lock padding), heavy cross-process element state \
       traffic (true sharing that bounds both versions' scalability).";
  }
