(** Maxflow — maximum flow in a directed graph (Carrasco, Stanford CS411).

    A wave-relaxation approximation of parallel push-relabel: each round a
    shared work queue is refilled with every node; processes pop nodes
    through a queue lock and push unit flow along the node's out-edges,
    locking the target node's lock.

    Sharing patterns reproduced from the paper's account:
    - node records are updated through queue/adjacency indirection, so the
      per-node writes look scattered to the analysis — write-shared without
      locality: the compiler pads and aligns them (Table 2: pad&align
      contributes 49.2% of Maxflow's false-sharing reduction);
    - a lock per node lives in a packed lock array, and the queue lock sits
      next to the queue counters: lock padding contributes the rest (7.3%);
    - the busy scalars [qhead]/[qtail]/[active]/[relabels] share one block
      and are written constantly at run time, but they sit under a
      statically unbounded while loop, so static profiling underestimates
      them and they fall below the hotness threshold — the residual false
      sharing the paper reports for Maxflow. *)

open Fs_ir.Dsl
open Wl_common

let deg = 4
let rounds = 8
let batch = 8

let build ~nprocs ~scale =
  ignore nprocs;
  let n = 64 * scale in
  let ne = n * deg in
  let nd =
    { Fs_ir.Ast.sname = "nd";
      fields = [ ("excess", int_t); ("height", int_t); ("wave", int_t) ] }
  in
  let edge u e = (u *% i deg) +% e in
  Fs_ir.Validate.validate_exn
    (program ~name:"maxflow" ~structs:[ nd ]
       ~globals:
         [ ("node", arr (struct_t "nd") n);
           ("adj", arr int_t ne);
           ("cap", arr int_t ne);
           ("flow", arr int_t ne);
           ("queue", arr int_t n);
           ("qhead", int_t);
           ("qtail", int_t);
           ("active", int_t);
           ("relabels", int_t);
           ("result", int_t);
           ("qlock", lock_t);
           ("nodelock", arr lock_t n);
         ]
       [ fn "main" []
           ([ master
                [ decl "s" (i 12345);
                  sfor "e" (i 0) (i ne)
                    [ lcg_next "s";
                      (v "adj").%(p "e") <-- lcg_mod "s" n;
                      lcg_next "s";
                      (v "cap").%(p "e") <-- (lcg_mod "s" 100 +% i 1) ];
                  sfor "u" (i 0) (i n)
                    [ (v "node").%(p "u").%{"excess"} <-- i 10;
                      (v "node").%(p "u").%{"height"} <-- i 0;
                      (v "node").%(p "u").%{"wave"} <-- i 0 ] ];
              barrier;
              sfor "round" (i 0) (i rounds)
                [ master
                    [ (v "qhead") <-- i 0;
                      (v "qtail") <-- i n;
                      sfor "u" (i 0) (i n) [ (v "queue").%(p "u") <-- p "u" ] ];
                  barrier;
                  decl "more" (i 1);
                  swhile (p "more")
                    [ (* grab a batch of nodes; the queue counters are hot
                         at run time but cheap in the static profile *)
                      lock (v "qlock");
                      decl "h" (ld (v "qhead"));
                      decl "lim" (min_ (p "h" +% i batch) (ld (v "qtail")));
                      sif (p "h" <% p "lim")
                        [ (v "qhead") <-- p "lim";
                          bump (v "active") (p "lim" -% p "h") ]
                        [ set "more" (i 0) ];
                      unlock (v "qlock");
                      when_ (p "more")
                        [ sfor "j" (p "h") (p "lim")
                            [ decl "u" (ld (v "queue").%(p "j"));
                              sfor "e" (i 0) (i deg)
                                (spin 30
                                 @ [ decl "w" (ld (v "adj").%(edge (p "u") (p "e")));
                                  (* test before locking: only a promising
                                     push pays for the lock *)
                                  decl "d"
                                    (min_
                                       (ld (v "node").%(p "u").%{"excess"})
                                       (ld (v "cap").%(edge (p "u") (p "e"))
                                        -% ld (v "flow").%(edge (p "u") (p "e"))));
                                  when_
                                    ((p "d" >% i 0)
                                     &&% (ld (v "node").%(p "u").%{"height"}
                                          >=% ld (v "node").%(p "w").%{"height"}))
                                    [ lock ((v "nodelock").%(p "w"));
                                      bump ((v "flow").%(edge (p "u") (p "e"))) (i 1);
                                      bump ((v "node").%(p "w").%{"excess"}) (i 1);
                                      (v "node").%(p "u").%{"excess"}
                                      <-- (ld (v "node").%(p "u").%{"excess"} -% i 1);
                                      unlock ((v "nodelock").%(p "w")) ] ]);
                              bump ((v "node").%(p "u").%{"height"}) (i 1) ];
                          bump (v "relabels") (p "lim" -% p "h") ] ];
                  barrier ];
              master
                [ decl "sum" (i 0);
                  sfor "u" (i 0) (i n)
                    [ set "sum" (p "sum" +% ld (v "node").%(p "u").%{"excess"}) ];
                  (v "result") <-- p "sum" ] ])
       ])

let spec =
  {
    Workload.name = "maxflow";
    description = "Maximum flow in a directed graph";
    lines_of_c = 810;
    versions = [ Workload.N; Workload.C ];
    dynamic = false;
    fig3_procs = 12;
    default_scale = 4;
    build;
    programmer_plan = None;  (* no programmer-optimized version (Table 1) *)
    notes =
      "Scattered node updates through queue indirection (pad&align), a \
       packed lock array and a queue lock next to the queue counters (lock \
       padding), and busy scalars under an unbounded while loop that static \
       profiling underestimates (residual false sharing).";
  }
