(** Dstress — the deque-stress microbenchmark.

    The master streams a long run of near-empty tasks through its deque
    while every other process steals as fast as it can.  Each task does
    one read-modify-write on the running process's slot of a packed
    per-process hit counter and one store into a small shared sink.  The
    program is all scheduler: steals, deque index traffic, and the
    thinnest possible task bodies.

    Sharing patterns modelled (deliberately, as a magnifying glass):
    - the scheduler's [__sched_top]/[__sched_bot] arrays — one int per
      process, packed — ping-pong on every push, pop, and steal probe;
    - [hits] is the textbook per-process counter array: written at
      [hits\[Pdv\]] by whoever runs the task, but the planner evaluates
      the spawned body on the spawning process and sees a single writer,
      so the compiler version leaves it packed.  The profile sees the
      truth and pads both. *)

open Fs_ir.Dsl
open Wl_common

let build ~nprocs ~scale =
  let stream = 48 * scale in
  let sink = 16 in
  Fs_sched.Sched.instrument ~nprocs
    (Fs_ir.Validate.validate_exn
       (program ~name:"dstress"
          ~globals:
            [ ("hits", arr int_t nprocs);
              ("sink", arr int_t sink);
              ("result", int_t) ]
          [ fn "tick" [ "t" ]
              [ bump ((v "hits").%(pdv)) (i 1);
                (v "sink").%(p "t" %% i sink) <-- p "t" ];
            fn "main" []
              [ master
                  [ sfor "t" (i 0) (i stream) [ spawn "tick" [ p "t" ] ] ];
                sync;
                barrier;
                master
                  [ decl "sum" (i 0);
                    sfor "q" (i 0) (i nprocs)
                      [ set "sum" (p "sum" +% ld (v "hits").%(p "q")) ];
                    (v "result") <-- p "sum" ] ] ]))

let spec =
  {
    Workload.name = "dstress";
    description = "Deque-stress: a stream of near-empty stolen tasks";
    lines_of_c = 0;
    versions = [ Workload.N; Workload.C ];
    dynamic = true;
    fig3_procs = 8;
    default_scale = 4;
    build;
    programmer_plan = None;
    notes =
      "Almost pure scheduler traffic: packed deque index arrays \
       ping-ponging between owner and thieves, and a per-process counter \
       array the planner believes has one writer.  The workload exists \
       to make the static-vs-profile gap unmissable.";
  }
