(** The benchmark suite of Table 1, reproduced as ParC programs.

    Each benchmark is a simplified but genuine parallel kernel that
    preserves the {e sharing pattern} of the original program — the thing
    false sharing, the analysis, and the transformations all depend on:
    which data is written per-process, how per-process data is laid out
    (interleaved vectors, fields embedded in records, busy scalars packed
    together), where locks live, and how work is distributed.

    Versions, as in Table 1:
    - {b N} (not optimized): the program with its natural packed layout —
      the empty plan.
    - {b C} (compiler optimized): the plan produced by
      [Fs_transform.Transform.plan] on the program; never hand-written.
    - {b P} (programmer optimized): a hand-written plan reproducing what
      the paper reports the programmers did — including their documented
      omissions and mistakes. *)

type version = N | C | P

val version_to_string : version -> string

type t = {
  name : string;
  description : string;
  lines_of_c : int;
      (** size of the original C program (Table 1), for documentation *)
  versions : version list;  (** which versions the paper evaluates *)
  dynamic : bool;
      (** uses [spawn]/[sync]: scheduling is decided at run time by the
          work-stealing runtime, so simulating it needs a scheduler seed
          and the static planner cannot see the schedule *)
  fig3_procs : int;         (** processor count used in Figure 3 *)
  default_scale : int;
  build : nprocs:int -> scale:int -> Fs_ir.Ast.program;
      (** the unoptimized program; validated *)
  programmer_plan : (nprocs:int -> scale:int -> Fs_layout.Plan.t) option;
  notes : string;  (** sharing patterns modelled, and why *)
}

val simulated : t list -> t list
(** Benchmarks with an N version — the six of Figure 3 / Table 2. *)

val find : t list -> string -> t
(** @raise Not_found on unknown names. *)
