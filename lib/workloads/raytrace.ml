(** Raytrace — rendering of a 3-dimensional scene (SPLASH2; Singh, Gupta,
    Levoy, IEEE Computer 1994).

    Image rows are handed out dynamically through a row counter; for each
    pixel the owning process intersects a ray against every scene object
    (unit-stride, read-shared — good spatial locality) and bumps its own
    ray/hit statistics vectors on every pixel.

    Compiler behaviour reproduced (Table 2: group & transpose 70.4%,
    pad & align 3.3%, locks 4.6%, and a residual):
    - [rays]/[hits]/[depth] — hot per-process statistics vectors — grouped
      and transposed together;
    - [img] — per-row results written behind the dynamic row index —
      scattered write-shared ints without locality — pad & align;
    - [rowlock] — lock padding;
    - [rowcnt]/[raysdone] — busy scalars updated once per row grab inside
      the statically unbounded while loop: static profiling underestimates
      them, they stay packed together, and their block keeps ping-ponging —
      the residual false sharing the paper attributes to "a few busy,
      write-shared scalars" in Raytrace.

    The programmer (SPLASH2-derived) version grouped the statistics
    vectors, but {e also} padded and aligned the scene object array — data
    the analysis concludes is not predominantly accessed per-process; the
    padding costs read spatial locality, which is why the programmer
    version trails the compiler version slightly in Table 3 (9.2 vs 9.6). *)

open Fs_ir.Dsl
open Wl_common

let width = 48

let build ~nprocs ~scale =
  let rows = 24 * scale in
  let nobj = 24 * scale in
  let obj =
    { Fs_ir.Ast.sname = "obj";
      fields = [ ("ox", int_t); ("oy", int_t); ("orad", int_t) ] }
  in
  Fs_ir.Validate.validate_exn
    (program ~name:"raytrace" ~structs:[ obj ]
       ~globals:
         [ ("scene", arr (struct_t "obj") nobj);
           ("img", arr int_t rows);
           ("rays", arr int_t nprocs);
           ("hits", arr int_t nprocs);
           ("depth", arr int_t nprocs);
           ("rowcnt", int_t);
           ("raysdone", int_t);
           ("checksum", int_t);
           ("rowlock", lock_t);
         ]
       [ fn "main" []
           [ master
               [ decl "s" (i 42424);
                 sfor "o" (i 0) (i nobj)
                   [ lcg_next "s";
                     (v "scene").%(p "o").%{"ox"} <-- lcg_mod "s" 4096;
                     lcg_next "s";
                     (v "scene").%(p "o").%{"oy"} <-- lcg_mod "s" 4096;
                     lcg_next "s";
                     (v "scene").%(p "o").%{"orad"} <-- (lcg_mod "s" 64 +% i 4) ] ];
             barrier;
             decl "more" (i 1);
             swhile (p "more")
               [ lock (v "rowlock");
                 decl "r" (ld (v "rowcnt"));
                 sif (p "r" <% i rows)
                   [ (v "rowcnt") <-- (p "r" +% i 1) ]
                   [ set "more" (i 0) ];
                 unlock (v "rowlock");
                 when_ (p "more")
                   [ sfor "x" (i 0) (i width)
                       [ decl "best" (i 16384);
                         sfor "o" (i 0) (i nobj)
                           (spin 4
                            @ [ decl "dx"
                               ((ld (v "scene").%(p "o").%{"ox"})
                                -% ((p "x" *% i 64) +% p "r"));
                             decl "dy"
                               ((ld (v "scene").%(p "o").%{"oy"}) -% (p "r" *% i 96));
                             decl "d"
                               (max_ (p "dx") (neg (p "dx"))
                                +% max_ (p "dy") (neg (p "dy"))
                                -% ld (v "scene").%(p "o").%{"orad"});
                              when_ (p "d" <% p "best") [ set "best" (p "d") ] ]);
                         bump ((v "rays").%(pdv)) (i 1);
                         when_ (p "best" <% i 0) [ bump ((v "hits").%(pdv)) (i 1) ];
                         bump ((v "depth").%(pdv)) (max_ (p "best") (i 0) /% i 256);
                         (* shade straight into the row accumulator *)
                         (v "img").%(p "r")
                         <-- ((ld (v "img").%(p "r") +% p "best") %% i 65536) ];
                     (* progress counter: busy, and statically invisible *)
                     bump (v "raysdone") (i width) ] ];
             barrier;
             master
               [ decl "sum" (i 0);
                 sfor "r" (i 0) (i rows)
                   [ set "sum" ((p "sum" +% ld (v "img").%(p "r")) %% i 1000003) ];
                 (v "checksum") <-- p "sum" ] ]
       ])

let spec =
  {
    Workload.name = "raytrace";
    description = "Rendering of a 3-dimensional scene";
    lines_of_c = 12391;
    versions = [ Workload.N; Workload.C; Workload.P ];
    dynamic = false;
    fig3_procs = 12;
    default_scale = 2;
    build;
    programmer_plan =
      Some
        (fun ~nprocs:_ ~scale:_ ->
          [ (* the statistics vectors were organized by processor... *)
            Fs_layout.Plan.Group_transpose
              { vars = [ "depth"; "hits"; "rays" ]; pdv_axis = 0 };
            (* ...but the scene array was padded even though it is not
               accessed predominantly per-process: spatial locality of the
               shared reads is lost (the paper's Raytrace anecdote) *)
            Fs_layout.Plan.Pad_align { var = "scene"; element = true };
            Fs_layout.Plan.Pad_locks ]);
    notes =
      "Hot per-process statistics vectors (group & transpose), per-row \
       image results behind a dynamic row counter (pad & align), row lock \
       (lock padding), busy row/progress counters underestimated by static \
       profiling (residual false sharing).";
  }
