(** Taskbag — iterative relaxation over a random graph, a bag of tasks
    per round.

    Each round the master dumps one task per node-batch into its deque
    and the other processes strip-mine it by stealing.  A task relaxes
    its batch: it accumulates neighbour values into its own nodes and
    bumps a touch counter on each neighbour — scattered read-modify-write
    traffic through the adjacency indirection, on top of the batch-local
    writes.

    Sharing patterns modelled:
    - [value]/[touched] are written by whichever process a task lands
      on: batches are contiguous, so adjacent batches executed by
      different thieves falsely share the boundary blocks — and the
      touch counters are scattered everywhere;
    - round structure (sync, then a barrier) alternates task-parallel
      epochs with SPMD epochs, exercising the entry-frame [sync]. *)

open Fs_ir.Dsl
open Wl_common

let deg = 4
let batch = 4
let rounds = 3

let build ~nprocs ~scale =
  let n = 32 * scale in
  let ne = n * deg in
  let ntasks = n / batch in
  Fs_sched.Sched.instrument ~nprocs
    (Fs_ir.Validate.validate_exn
       (program ~name:"taskbag"
          ~globals:
            [ ("adj", arr int_t ne);
              ("value", arr int_t n);
              ("touched", arr int_t n);
              ("result", int_t) ]
          [ fn "relax" [ "t" ]
              [ sfor "u" (p "t" *% i batch) ((p "t" +% i 1) *% i batch)
                  (spin 12
                  @ [ decl "acc" (i 0);
                      sfor "e" (i 0) (i deg)
                        [ decl "w" (ld (v "adj").%((p "u" *% i deg) +% p "e"));
                          set "acc" (p "acc" +% ld (v "value").%(p "w"));
                          bump ((v "touched").%(p "w")) (i 1) ];
                      bump ((v "value").%(p "u")) (p "acc" %% i 97) ]) ];
            fn "main" []
              [ master
                  [ decl "s" (i 777);
                    sfor "e" (i 0) (i ne)
                      [ lcg_next "s"; (v "adj").%(p "e") <-- lcg_mod "s" n ];
                    sfor "u" (i 0) (i n)
                      [ (v "value").%(p "u") <-- p "u" %% i 17;
                        (v "touched").%(p "u") <-- i 0 ] ];
                barrier;
                sfor "round" (i 0) (i rounds)
                  [ master
                      [ sfor "t" (i 0) (i ntasks) [ spawn "relax" [ p "t" ] ] ];
                    sync;
                    barrier ];
                master
                  [ decl "sum" (i 0);
                    sfor "u" (i 0) (i n)
                      [ set "sum" (p "sum" +% ld (v "touched").%(p "u")) ];
                    (v "result") <-- p "sum" ] ] ]))

let spec =
  {
    Workload.name = "taskbag";
    description = "Task-bag graph relaxation, one bag per round";
    lines_of_c = 0;
    versions = [ Workload.N; Workload.C ];
    dynamic = true;
    fig3_procs = 8;
    default_scale = 4;
    build;
    programmer_plan = None;
    notes =
      "Batch-contiguous node updates whose process assignment is decided \
       by steals (boundary false sharing the planner attributes to one \
       writer), scattered touch counters through the adjacency \
       indirection, and deque traffic between rounds.";
  }
