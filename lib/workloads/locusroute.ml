(** LocusRoute — VLSI standard cell router (SPLASH; Rose).

    Wires are routed in parallel: each wire's route writes a unit-stride
    run of cost-grid cells, and per-region occupancy counters are updated
    under per-region locks.

    Expected behaviour (Table 3: compiler 12.3 at 20 processors,
    programmer 12.0 at 20 — nearly equal):
    - [grid] — the cost array — is write-shared, but routes are unit-stride
      runs: apparent spatial locality keeps it untouched (both versions);
    - [wirestat] — hot per-process routing statistics — group & transpose;
    - [region] records co-allocate an occupancy counter with its lock: the
      compiler's lock padding separates them; the SPLASH programmer left
      the locks co-allocated with the data they protect (Section 5 names
      LocusRoute among the programs that suffered from unpadded and
      co-allocated locks). *)

open Fs_ir.Dsl
open Wl_common

let rounds = 3

let build ~nprocs ~scale =
  let g = 2048 * scale in    (* cost grid cells *)
  let nwires = 48 * scale in
  let nregions = 16 in
  let runlen = 12 in
  let region =
    { Fs_ir.Ast.sname = "region";
      fields = [ ("occ", int_t); ("rlock", lock_t) ] }
  in
  Fs_ir.Validate.validate_exn
    (program ~name:"locusroute" ~structs:[ region ]
       ~globals:
         [ ("grid", arr int_t g);
           ("wsrc", arr int_t nwires);
           ("regions", arr (struct_t "region") nregions);
           ("wirestat", arr int_t nprocs);
           ("bends", arr int_t nprocs);
           ("checksum", int_t);
         ]
       [ fn "main" []
           ([ master
                [ decl "s" (i 60221);
                  sfor "w" (i 0) (i nwires)
                    [ lcg_next "s";
                      (v "wsrc").%(p "w") <-- lcg_mod "s" (g - runlen) ] ];
              barrier;
              sfor "round" (i 0) (i rounds)
                (interleaved ~idx:"w" ~nprocs ~n:nwires (fun w ->
                     [ decl "base" (ld (v "wsrc").%(w));
                       (* rip up and re-route: a unit-stride run of grid
                          cells has its cost bumped *)
                       decl "cost" (i 0);
                       sfor "j" (i 0) (i runlen)
                         (spin 80
                          @ [ set "cost" (p "cost" +% ld (v "grid").%(p "base" +% p "j"));
                              bump ((v "grid").%(p "base" +% p "j")) (i 1) ]);
                       (* per-region occupancy under the region's lock *)
                       decl "rg" (p "base" %% i nregions);
                       lock ((v "regions").%(p "rg").%{"rlock"});
                       bump ((v "regions").%(p "rg").%{"occ"}) (i 1);
                       unlock ((v "regions").%(p "rg").%{"rlock"});
                       (* hot per-process statistics, once per grid cell *)
                       sfor "j" (i 0) (i runlen)
                         [ bump ((v "wirestat").%(pdv)) (i 1) ];
                       bump ((v "bends").%(pdv)) (p "cost" %% i 5) ])
                 @ [ barrier ]) ]
            @ [ master
                  [ decl "sum" (i 0);
                    sfor "c" (i 0) (i g)
                      [ set "sum" ((p "sum" +% ld (v "grid").%(p "c")) %% i 1000003) ];
                    (v "checksum") <-- p "sum" ] ])
       ])

let spec =
  {
    Workload.name = "locusroute";
    description = "VLSI standard cell router";
    lines_of_c = 6709;
    versions = [ Workload.C; Workload.P ];  (* Table 1: no unoptimized run *)
    dynamic = false;
    fig3_procs = 12;
    default_scale = 2;
    build;
    programmer_plan =
      Some
        (fun ~nprocs:_ ~scale:_ ->
          (* the SPLASH programmer organized the statistics by processor but
             kept the locks co-allocated with the region counters *)
          [ Fs_layout.Plan.Group_transpose
              { vars = [ "bends"; "wirestat" ]; pdv_axis = 0 } ]);
    notes =
      "Unit-stride cost-grid writes (kept: spatial locality), hot \
       per-process statistics (group & transpose), per-region locks \
       co-allocated with occupancy counters (lock padding vs programmer's \
       co-allocation).";
  }
