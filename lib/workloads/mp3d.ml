(** Mp3d — rarefied hypersonic fluid flow (SPLASH; McDonald).

    Particles are moved in parallel and scored into space cells; collision
    statistics are kept globally.  Mp3d is the SPLASH program most
    notorious for false sharing: particles are assigned round-robin, so
    consecutive particle records belong to different processors, and the
    space cells are updated through particle positions.

    Expected behaviour (Table 3: compiler 2.9 at 28 processors,
    programmer 1.3 at 4 — the programmer version barely scales):
    - [part] — particle records assigned [k*P+pid] — group & transpose
      (regrouped strided): the dominant fix;
    - [space] — cell records written through particle positions, scattered
      without locality — pad & align per element;
    - [colstat] — global collision counters written by everyone — padded;
    - the reservoir lock sits next to the collision counters — lock
      padding.

    The programmer version only separates the space cells; the particle
    interleaving and the lock placement stay, which is why it stops
    scaling at 4 processors in Table 3. *)

open Fs_ir.Dsl
open Wl_common

let rounds = 5

let build ~nprocs ~scale =
  let n = 96 * scale in  (* particles *)
  let m = 48 in          (* space cells *)
  let particle =
    { Fs_ir.Ast.sname = "particle";
      fields = [ ("px", int_t); ("pv", int_t); ("pe", int_t) ] }
  in
  let cellr =
    { Fs_ir.Ast.sname = "cellr";
      fields = [ ("density", int_t); ("momentum", int_t) ] }
  in
  let cst =
    { Fs_ir.Ast.sname = "cst";
      fields = [ ("collisions", int_t); ("escapes", int_t) ] }
  in
  let pt i_ fld = (v "part").%(i_).%{fld} in
  Fs_ir.Validate.validate_exn
    (program ~name:"mp3d" ~structs:[ particle; cellr; cst ]
       ~globals:
         [ ("part", arr (struct_t "particle") n);
           ("space", arr (struct_t "cellr") m);
           ("colstat", struct_t "cst");
           ("reslock", lock_t);
           ("reservoir", int_t);
           ("checksum", int_t);
         ]
       [ fn "main" []
           ([ master
                [ decl "s" (i 98765);
                  sfor "k" (i 0) (i n)
                    [ lcg_next "s";
                      pt (p "k") "px" <-- lcg_mod "s" 4096;
                      lcg_next "s";
                      pt (p "k") "pv" <-- (lcg_mod "s" 15 +% i 1);
                      pt (p "k") "pe" <-- i 0 ];
                  (v "reservoir") <-- i n ];
              barrier;
              sfor "round" (i 0) (i rounds)
                (interleaved ~idx:"k" ~nprocs ~n (fun k ->
                     spin 12
                     @ [ (* move: advance own particle (round-robin records) *)
                         decl "x" ((ld (pt k "px") +% ld (pt k "pv")) %% i 4096);
                       pt k "px" <-- p "x";
                       bump (pt k "pe") (ld (pt k "pv") /% i 4);
                       (* score into the space cell under the position *)
                       decl "c" (p "x" %% i m);
                       bump ((v "space").%(p "c").%{"density"}) (i 1);
                       bump ((v "space").%(p "c").%{"momentum"}) (ld (pt k "pv"));
                       (* collide occasionally: global counters *)
                       when_ ((p "x" %% i 7) ==% i 0)
                         [ bump ((v "colstat").%{"collisions"}) (i 1);
                           pt k "pv" <-- (i 1 +% (ld (pt k "pv") %% i 15)) ];
                       when_ ((p "x" %% i 31) ==% i 0)
                         [ lock (v "reslock");
                           bump (v "reservoir") (i (-1));
                           bump ((v "colstat").%{"escapes"}) (i 1);
                           unlock (v "reslock") ] ])
                 @ [ barrier ]) ]
            @ [ master
                  [ decl "sum" (i 0);
                    sfor "c" (i 0) (i m)
                      [ set "sum"
                          ((p "sum" +% ld (v "space").%(p "c").%{"density"})
                           %% i 1000003) ];
                    (v "checksum") <-- (p "sum" +% ld (v "reservoir")) ] ])
       ])

let spec =
  {
    Workload.name = "mp3d";
    description = "Rarefied fluid flow";
    lines_of_c = 1653;
    versions = [ Workload.C; Workload.P ];
    dynamic = false;
    fig3_procs = 12;
    default_scale = 2;
    build;
    programmer_plan =
      Some
        (fun ~nprocs:_ ~scale:_ ->
          (* the programmer separated the space cells but left the particle
             interleaving, the global counters and the lock placement *)
          [ Fs_layout.Plan.Pad_align { var = "space"; element = true } ]);
    notes =
      "Round-robin particle records (group & transpose, strided), space \
       cells written through particle positions (pad & align), global \
       collision counters (pad & align), reservoir lock packed with the \
       counters (lock padding).";
  }
