(** Water — N-body molecular dynamics (SPLASH; Singh).

    Each timestep the processes compute pairwise intermolecular forces for
    their contiguous slice of molecules (updating the {e other} molecule of
    each pair under its lock), accumulate potential and virial terms into
    per-process sums, and then integrate their own molecules.

    Expected behaviour (Table 3: compiler 9.9 at 40 processors,
    programmer 4.6 at 12):
    - [esum]/[vsum] — per-process energy/virial accumulators bumped on
      every pair — group & transpose (the opportunity the SPLASH
      programmer missed: the original accumulates into a shared array);
    - [mol] — molecule records in contiguous per-process chunks — group &
      transpose (chunked; pads the chunk seams) — this one the programmer
      {e did} get right;
    - [mlock] — per-molecule locks in a packed array — lock padding (the
      programmer left them packed, and cross-molecule force updates make
      them hot). *)

open Fs_ir.Dsl
open Wl_common

let rounds = 4
let neighbors = 4

let build ~nprocs ~scale =
  let n = 96 * scale in  (* molecules *)
  let mol =
    { Fs_ir.Ast.sname = "mol";
      fields = [ ("mx", int_t); ("mv", int_t); ("mf", int_t) ] }
  in
  let ml i_ fld = (v "mol").%(i_).%{fld} in
  Fs_ir.Validate.validate_exn
    (program ~name:"water" ~structs:[ mol ]
       ~globals:
         [ ("mol", arr (struct_t "mol") n);
           ("mlock", arr lock_t n);
           ("esum", arr int_t nprocs);
           ("vsum", arr int_t nprocs);
           ("checksum", int_t);
         ]
       [ fn "main" []
           ([ master
                [ decl "s" (i 11213);
                  sfor "k" (i 0) (i n)
                    [ lcg_next "s";
                      ml (p "k") "mx" <-- lcg_mod "s" 8192;
                      lcg_next "s";
                      ml (p "k") "mv" <-- (lcg_mod "s" 31 +% i 1);
                      ml (p "k") "mf" <-- i 0 ] ];
              barrier;
              sfor "round" (i 0) (i rounds)
                ((* force computation over a neighbor window *)
                 chunked ~idx:"k" ~nprocs ~n (fun k ->
                     [ sfor "d" (i 1) (i (neighbors + 1))
                         (spin 40
                          @ [ decl "j" ((k +% p "d") %% i n);
                           decl "f"
                             ((ld (ml k "mx") -% ld (ml (p "j") "mx")) %% i 97);
                           (* own molecule needs no lock; the partner does *)
                           bump (ml k "mf") (p "f");
                           lock ((v "mlock").%(p "j"));
                           bump (ml (p "j") "mf") (neg (p "f"));
                           unlock ((v "mlock").%(p "j"));
                           (* per-process energy/virial accumulation *)
                             bump ((v "esum").%(pdv)) (max_ (p "f") (neg (p "f")));
                             bump ((v "vsum").%(pdv)) (p "f" *% p "f" %% i 101) ]) ])
                 @ [ barrier ]
                 (* integrate own molecules *)
                 @ chunked ~idx:"k" ~nprocs ~n (fun k ->
                       [ bump (ml k "mv") (ld (ml k "mf") /% i 8);
                         ml k "mx"
                         <-- ((ld (ml k "mx") +% ld (ml k "mv")) %% i 8192);
                         ml k "mf" <-- i 0 ])
                 @ [ barrier ]) ]
            @ [ master
                  [ decl "sum" (i 0);
                    sfor "q" (i 0) (i nprocs)
                      [ set "sum"
                          ((p "sum" +% ld (v "esum").%(p "q")) %% i 1000003) ];
                    (v "checksum") <-- p "sum" ] ])
       ])

let spec =
  {
    Workload.name = "water";
    description = "N-body molecular dynamics";
    lines_of_c = 1451;
    versions = [ Workload.C; Workload.P ];
    dynamic = false;
    fig3_procs = 12;
    default_scale = 2;
    build;
    programmer_plan =
      Some
        (fun ~nprocs ~scale:_ ->
          (* the programmer partitioned the molecules well but left the
             locks packed and the accumulators interleaved *)
          [ Fs_layout.Plan.Regroup { var = "mol"; ways = nprocs; chunked = true } ]);
    notes =
      "Per-process energy/virial accumulators on every pair (group & \
       transpose), contiguous molecule chunks (group & transpose, \
       chunked), packed per-molecule lock array with cross-chunk force \
       updates (lock padding).";
  }
