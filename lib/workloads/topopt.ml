(** Topopt — topological optimization of multiple-level array logic
    (Devadas & Newton, IEEE TCAD 1987).

    An annealing-style optimizer: each round every process rescores the
    circuit cells against the current assignment, tracks its own best cost,
    and rewrites its {e revolving} slice of the assignment array.

    Compiler behaviour reproduced (Table 2: group & transpose 61.3%,
    indirection 18.6%, no pad, no locks):
    - [cost] — a hot per-process accumulator vector — group & transpose;
    - [cells.gain] — a per-process field embedded in the cell records —
      indirection;
    - [assign] — dynamically partitioned across the processes in a
      revolving manner ([((pid + round) mod P) * chunk + j]): the static
      analysis cannot prove the partitions disjoint, and the unit-stride
      writes give the array apparent spatial locality, so it is left
      untouched — the residual false sharing the paper reports for Topopt
      (at the cache blocks straddling partition boundaries);
    - [best]/[trial] are touched once per round, land below the hotness
      threshold, and stay packed — a small extra residual. *)

open Fs_ir.Dsl
open Wl_common

let rounds = 6

let build ~nprocs ~scale =
  let n = 48 * scale in  (* assignment array *)
  let m = 48 * scale in  (* circuit cells *)
  let chunk = n / nprocs in
  let cell =
    { Fs_ir.Ast.sname = "cell";
      fields = [ ("state", int_t); ("gain", arr int_t nprocs) ] }
  in
  Fs_ir.Validate.validate_exn
    (program ~name:"topopt" ~structs:[ cell ]
       ~globals:
         [ ("assign", arr int_t n);
           ("cells", arr (struct_t "cell") m);
           ("cost", arr int_t nprocs);
           ("best", arr int_t nprocs);
           ("trial", arr int_t nprocs);
           ("checksum", int_t);
         ]
       [ fn "main" []
           [ master
               [ sfor "j" (i 0) (i n) [ (v "assign").%(p "j") <-- (p "j" %% i 3) ];
                 sfor "c" (i 0) (i m)
                   [ (v "cells").%(p "c").%{"state"} <-- (p "c" %% i 5) ];
                 sfor "q" (i 0) (i nprocs) [ (v "best").%(p "q") <-- i 1000000 ] ];
             barrier;
             sfor "round" (i 0) (i rounds)
               ([ (* rewrite this round's revolving slice of the assignment *)
                  decl "base" (((pdv +% p "round") %% i nprocs) *% i chunk);
                  sfor "j" (i 0) (i chunk)
                    [ (v "assign").%(p "base" +% p "j")
                      <-- ((ld (v "assign").%(p "base" +% p "j") +% p "round") %% i 7) ];
                  (* rescore this process's share of the cells; the gain it
                     computes is its own (embedded per-process field) *)
                  (v "cost").%(pdv) <-- i 0 ]
                @ interleaved ~idx:"c" ~nprocs ~n:m (fun c ->
                      spin 150
                      @ [ decl "a"
                            (ld (v "assign").%(
                               p "base" +% (((c *% i 3) +% p "round") %% i chunk)));
                          decl "g"
                            ((ld (v "cells").%(c).%{"state"} *% p "a") %% i 17);
                          (v "cells").%(c).%{"gain"}.%(pdv) <-- p "g";
                          bump ((v "cost").%(pdv)) (p "g") ])
                @ [ bump ((v "trial").%(pdv)) (i 1);
                    (v "best").%(pdv)
                    <-- min_ (ld (v "best").%(pdv)) (ld (v "cost").%(pdv));
                    barrier ]);
             master
               [ decl "sum" (i 0);
                 sfor "q" (i 0) (i nprocs)
                   [ set "sum" (p "sum" +% ld (v "best").%(p "q")) ];
                 (v "checksum") <-- p "sum" ] ]
       ])

let spec =
  {
    Workload.name = "topopt";
    description = "Topological optimization";
    lines_of_c = 2206;
    versions = [ Workload.N; Workload.C; Workload.P ];
    dynamic = false;
    fig3_procs = 9;  (* as in Figure 3 *)
    default_scale = 2;
    build;
    programmer_plan =
      Some
        (fun ~nprocs:_ ~scale:_ ->
          (* the manual transformation of [EJ91]: essentially what the
             compiler finds (Table 3 shows them nearly equal), done by the
             same authors by hand *)
          [ Fs_layout.Plan.Group_transpose { vars = [ "cost" ]; pdv_axis = 0 };
            Fs_layout.Plan.Indirect { var = "cells"; fields = [ "gain" ] } ]);
    notes =
      "Hot per-process cost vector (group & transpose), per-process gain \
       field in cell records (indirection), revolving dynamically \
       partitioned assignment array with unit-stride writes (left alone: \
       residual false sharing, as the paper reports).";
  }
