(** Registry of the benchmark suite. *)

val all : Workload.t list
(** The ten static benchmarks in Table 1 order: Maxflow, Pverify,
    Topopt, Fmm, Radiosity, Raytrace, LocusRoute, Mp3d, Pthor, Water.
    Every baseline experiment ranges over exactly this list. *)

val dynamic : Workload.t list
(** The task-parallel family (fib, taskbag, stencil, dstress): programs
    using [spawn]/[sync], scheduled at run time by the seeded
    work-stealing runtime.  Kept out of {!all} so the paper's baselines
    never shift. *)

val every : Workload.t list
(** {!all} followed by {!dynamic}. *)

val find : string -> Workload.t
(** Looks up {!every}.  @raise Not_found on unknown names. *)

val simulated : unit -> Workload.t list
(** The six static benchmarks with an unoptimized version — Figure 3 /
    Table 2. *)
