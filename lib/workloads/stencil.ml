(** Stencil — a 1-D three-point stencil whose tiles migrate by stealing.

    A classic SPMD stencil assigns tiles to processes statically, so the
    compiler can block-align the partition.  Here each sweep's tiles are
    spawned as tasks: which process writes a tile is decided by the
    deques at run time, and changes from sweep to sweep.  The source and
    destination arrays alternate by sweep parity.

    Sharing patterns modelled:
    - tile-boundary blocks of the destination array are written by the
      two (dynamically chosen) processes owning adjacent tiles — false
      sharing that moves around between sweeps and that the static
      planner, seeing every write on the spawning process, cannot even
      classify as shared;
    - reads reach one cell across each boundary, so padding tiles to
      block boundaries trades the false sharing for true neighbour
      communication, exactly the paper's stencil story. *)

open Fs_ir.Dsl
open Wl_common

let tile = 16
let sweeps = 4

let build ~nprocs ~scale =
  let n = 64 * scale in
  let ntiles = n / tile in
  let body ~dst ~src =
    [ sfor "idx"
        (max_ (p "lo") (i 1))
        (min_ (p "lo" +% i tile) (i (n - 1)))
        (spin 6
        @ [ (v dst).%(p "idx")
            <-- (ld (v src).%(p "idx" -% i 1)
                 +% ld (v src).%(p "idx")
                 +% ld (v src).%(p "idx" +% i 1))
                %% i 1021 ]) ]
  in
  Fs_sched.Sched.instrument ~nprocs
    (Fs_ir.Validate.validate_exn
       (program ~name:"stencil"
          ~globals:
            [ ("a", arr int_t n); ("b", arr int_t n); ("result", int_t) ]
          [ fn "tile_sweep" [ "t"; "par" ]
              [ decl "lo" (p "t" *% i tile);
                sif (p "par" ==% i 0) (body ~dst:"b" ~src:"a")
                  (body ~dst:"a" ~src:"b") ];
            fn "main" []
              [ master
                  [ sfor "idx" (i 0) (i n)
                      [ (v "a").%(p "idx") <-- p "idx" %% i 13;
                        (v "b").%(p "idx") <-- i 0 ] ];
                barrier;
                sfor "s" (i 0) (i sweeps)
                  [ master
                      [ sfor "t" (i 0) (i ntiles)
                          [ spawn "tile_sweep" [ p "t"; p "s" %% i 2 ] ] ];
                    sync;
                    barrier ];
                master
                  [ decl "sum" (i 0);
                    sfor "idx" (i 0) (i n)
                      [ set "sum" (p "sum" +% ld (v "a").%(p "idx")) ];
                    (v "result") <-- p "sum" ] ] ]))

let spec =
  {
    Workload.name = "stencil";
    description = "Three-point stencil with stolen tiles";
    lines_of_c = 0;
    versions = [ Workload.N; Workload.C ];
    dynamic = true;
    fig3_procs = 8;
    default_scale = 4;
    build;
    programmer_plan = None;
    notes =
      "Tile-boundary false sharing whose writer pair is chosen by the \
       deques each sweep; the static planner sees one writer and leaves \
       the arrays packed.  Repair block-aligns the tiles from the \
       profile.";
  }
