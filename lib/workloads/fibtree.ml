(** Fib — divide-and-conquer Fibonacci over an explicit result tree.

    The canonical work-stealing benchmark: every task spawns its [n-1]
    subproblem, computes the [n-2] subproblem inline (help-first), syncs,
    and combines into its slot of a heap-numbered result tree.  The
    master spawns the root; every other process reaches the entry [sync]
    immediately and lives entirely off steals.

    Sharing patterns modelled:
    - the result tree is written at whichever slot a task owns, by
      whichever process stole it — neighbouring slots land on the same
      block under different processes, false sharing no static analysis
      can attribute: the planner sees every task body as run by the
      spawning process and calls the tree single-writer;
    - the scheduler's own [top]/[bot] index arrays ping-pong between the
      owner popping at the bottom and thieves advancing the top — the
      residual false sharing the profile-guided repair exists to cure. *)

open Fs_ir.Dsl
open Wl_common

let left slot = (i 2 *% slot) +% i 1
let right slot = (i 2 *% slot) +% i 2

let build ~nprocs ~scale =
  let n = 7 + scale in
  let tree = (1 lsl (n + 1)) - 1 in
  Fs_sched.Sched.instrument ~nprocs
    (Fs_ir.Validate.validate_exn
       (program ~name:"fib"
          ~globals:[ ("tree", arr int_t tree); ("result", int_t) ]
          [ fn "fibtask" [ "n"; "slot" ]
              [ sif
                  (p "n" <% i 2)
                  (spin 8 @ [ (v "tree").%(p "slot") <-- p "n" ])
                  [ spawn "fibtask" [ p "n" -% i 1; left (p "slot") ];
                    call "fibtask" [ p "n" -% i 2; right (p "slot") ];
                    sync;
                    (v "tree").%(p "slot")
                    <-- ld (v "tree").%(left (p "slot"))
                        +% ld (v "tree").%(right (p "slot")) ] ];
            fn "main" []
              [ master [ spawn "fibtask" [ i n; i 0 ] ];
                sync;
                barrier;
                master [ (v "result") <-- ld (v "tree").%(i 0) ] ] ]))

let spec =
  {
    Workload.name = "fib";
    description = "Divide-and-conquer Fibonacci on the task runtime";
    lines_of_c = 0;
    versions = [ Workload.N; Workload.C ];
    dynamic = true;
    fig3_procs = 8;
    default_scale = 4;
    build;
    programmer_plan = None;
    notes =
      "Result-tree slots written by whichever process steals the task \
       (the planner attributes every task to its spawner and sees a \
       single writer), plus deque index ping-pong in the scheduler's own \
       globals — both invisible to the static planner, both repairable \
       from the profile.";
  }
