type version = N | C | P

let version_to_string = function N -> "original" | C -> "compiler" | P -> "programmer"

type t = {
  name : string;
  description : string;
  lines_of_c : int;
  versions : version list;
  dynamic : bool;
  fig3_procs : int;
  default_scale : int;
  build : nprocs:int -> scale:int -> Fs_ir.Ast.program;
  programmer_plan : (nprocs:int -> scale:int -> Fs_layout.Plan.t) option;
  notes : string;
}

let simulated ts = List.filter (fun t -> List.mem N t.versions) ts

let find ts name = List.find (fun t -> t.name = name) ts
