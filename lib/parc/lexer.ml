type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | BQ_IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

let keywords =
  [ "program"; "shared"; "struct"; "int"; "float"; "lock"; "void"; "let";
    "if"; "else"; "while"; "for"; "return"; "barrier"; "unlock"; "entry";
    "pid"; "nprocs"; "spawn"; "sync" ]

(* multi-character operators first: longest match wins *)
let puncts =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "++";
    "{"; "}"; "("; ")"; "["; "]"; ";"; ","; "."; "=";
    "<"; ">"; "+"; "-"; "*"; "/"; "%"; "!" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  let starts_with p =
    let lp = String.length p in
    !i + lp <= n && String.sub src !i lp = p
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if starts_with "//" then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if starts_with "/*" then begin
      i := !i + 2;
      while !i + 1 < n && not (starts_with "*/") do
        if src.[!i] = '\n' then incr line;
        incr i
      done;
      i := !i + 2
    end
    else if c = '`' then begin
      let j = ref (!i + 1) in
      while !j < n && src.[!j] <> '`' do incr j done;
      if !j >= n then failwith (Printf.sprintf "line %d: unterminated backtick" !line);
      push (BQ_IDENT (String.sub src (!i + 1) (!j - !i - 1)));
      i := !j + 1
    end
    else if is_digit c then begin
      (* integers are decimal; floats are the %h hexadecimal form or use
         '.'/'e' — scan the longest numeric-looking run and decide *)
      let j = ref !i in
      let is_num_char ch =
        is_digit ch || ch = 'x' || ch = 'X' || ch = '.' || ch = 'p' || ch = 'P'
        || (ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F')
        || ((ch = '+' || ch = '-') && !j > !i
            && (src.[!j - 1] = 'p' || src.[!j - 1] = 'P'))
      in
      (* hex floats contain letters; plain ints must not swallow a trailing
         identifier, so only extend past digits when an 'x' or '.' occurs *)
      let hexish = !i + 1 < n && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X') in
      if hexish then begin
        j := !i + 2;
        while !j < n && is_num_char src.[!j] do incr j done
      end
      else begin
        while !j < n && is_digit src.[!j] do incr j done;
        if !j < n && src.[!j] = '.' then begin
          incr j;
          while !j < n && (is_digit src.[!j] || src.[!j] = 'e' || src.[!j] = '-') do incr j done
        end
      end;
      let text = String.sub src !i (!j - !i) in
      (if hexish || String.contains text '.' then
         push (FLOAT (float_of_string text))
       else push (INT (int_of_string text)));
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      let text = String.sub src !i (!j - !i) in
      (if List.mem text keywords then push (KW text) else push (IDENT text));
      i := !j
    end
    else begin
      match List.find_opt starts_with puncts with
      | Some p ->
        push (PUNCT p);
        i := !i + String.length p
      | None ->
        failwith (Printf.sprintf "line %d: unexpected character %C" !line c)
    end
  done;
  List.rev ((EOF, !line) :: !toks)

let to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | BQ_IDENT s -> "`" ^ s ^ "`"
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
