module Ast = Fs_ir.Ast
open Lexer

exception Parse_error of string

type state = {
  mutable toks : (token * int) list;
  mutable globals : string list;   (* known shared names *)
  mutable funcs : string list;     (* known function names *)
}

let err st what =
  let tok, line = match st.toks with t :: _ -> t | [] -> (EOF, 0) in
  raise
    (Parse_error
       (Printf.sprintf "line %d: expected %s, found %s" line what (to_string tok)))

let peek st = match st.toks with (t, _) :: _ -> t | [] -> EOF
let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> EOF
let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let eat st t what =
  if peek st = t then advance st else err st what

let eat_punct st p = eat st (PUNCT p) (Printf.sprintf "%S" p)
let eat_kw st k = eat st (KW k) (Printf.sprintf "%S" k)

let ident st =
  match peek st with
  | IDENT s -> advance st; s
  | _ -> err st "an identifier"

let int_lit st =
  match peek st with
  | INT n -> advance st; n
  | _ -> err st "an integer"

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

let base_type st =
  match peek st with
  | KW "int" -> advance st; Ast.Scalar Ast.Tint
  | KW "float" -> advance st; Ast.Scalar Ast.Tfloat
  | KW "lock" -> advance st; Ast.Scalar Ast.Tlock
  | KW "struct" ->
    advance st;
    Ast.Struct (ident st)
  | _ -> err st "a type"

(* C-style declarator: base name [d0][d1]... *)
let dims st =
  let rec go acc =
    if peek st = PUNCT "[" then begin
      advance st;
      let d = int_lit st in
      eat_punct st "]";
      go (d :: acc)
    end
    else acc
  in
  (* collected innermost-last; rebuild outermost-first *)
  List.rev (go [])

let apply_dims base ds = List.fold_right (fun d t -> Ast.Array (t, d)) ds base

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing; mirrors Pp.prec_of)               *)

let binop_of_punct = function
  | "*" -> Some Ast.Mul | "/" -> Some Ast.Div | "%" -> Some Ast.Mod
  | "+" -> Some Ast.Add | "-" -> Some Ast.Sub
  | "<" -> Some Ast.Lt | "<=" -> Some Ast.Le
  | ">" -> Some Ast.Gt | ">=" -> Some Ast.Ge
  | "==" -> Some Ast.Eq | "!=" -> Some Ast.Ne
  | "&&" -> Some Ast.And | "||" -> Some Ast.Or
  | _ -> None

let prec_of = function
  | Ast.Mul | Ast.Div | Ast.Mod -> 7
  | Ast.Add | Ast.Sub -> 6
  | Ast.Min | Ast.Max -> 5
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 4
  | Ast.Eq | Ast.Ne -> 3
  | Ast.And -> 2
  | Ast.Or -> 1

let rec expr st = binary st 0

and binary st min_prec =
  let lhs = ref (unary st) in
  let continue_ = ref true in
  while !continue_ do
    let op =
      match peek st with
      | PUNCT p -> binop_of_punct p
      | BQ_IDENT "min" -> Some Ast.Min
      | BQ_IDENT "max" -> Some Ast.Max
      | _ -> None
    in
    match op with
    | Some op when prec_of op >= min_prec ->
      advance st;
      let rhs = binary st (prec_of op + 1) in
      lhs := Ast.Binop (op, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

and unary st =
  match peek st with
  | PUNCT "-" ->
    advance st;
    (* fold a negated literal so the printer's "(-5)" round-trips *)
    (match unary st with
     | Ast.Int_lit n -> Ast.Int_lit (-n)
     | e -> Ast.Unop (Ast.Neg, e))
  | PUNCT "!" ->
    advance st;
    Ast.Unop (Ast.Not, unary st)
  | _ -> atom st

and atom st =
  match peek st with
  | INT n -> advance st; Ast.Int_lit n
  | FLOAT f -> advance st; Ast.Float_lit f
  | KW "pid" -> advance st; Ast.Pdv
  | KW "nprocs" -> advance st; Ast.Nprocs
  | PUNCT "(" ->
    advance st;
    let e = expr st in
    eat_punct st ")";
    e
  | IDENT name ->
    advance st;
    let path = access_path st in
    if path <> [] || List.mem name st.globals then
      Ast.Load { base = name; path }
    else Ast.Priv name
  | _ -> err st "an expression"

and access_path st =
  let rec go acc =
    match peek st with
    | PUNCT "[" ->
      advance st;
      let e = expr st in
      eat_punct st "]";
      go (Ast.Idx e :: acc)
    | PUNCT "." ->
      advance st;
      go (Ast.Fld (ident st) :: acc)
    | _ -> List.rev acc
  in
  go []

let lvalue st =
  let base = ident st in
  { Ast.base; path = access_path st }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let rec block st =
  eat_punct st "{";
  let rec go acc =
    if peek st = PUNCT "}" then begin
      advance st;
      List.rev acc
    end
    else go (stmt st :: acc)
  in
  go []

and stmt st =
  match peek st with
  | KW "let" ->
    advance st;
    let name = ident st in
    eat_punct st "=";
    let e = expr st in
    eat_punct st ";";
    Ast.Decl (name, e)
  | KW "if" ->
    advance st;
    eat_punct st "(";
    let c = expr st in
    eat_punct st ")";
    let b1 = block st in
    let b2 = if peek st = KW "else" then (advance st; block st) else [] in
    Ast.If (c, b1, b2)
  | KW "while" ->
    advance st;
    eat_punct st "(";
    let c = expr st in
    eat_punct st ")";
    Ast.While (c, block st)
  | KW "for" ->
    advance st;
    eat_punct st "(";
    let v = ident st in
    eat_punct st "=";
    let lo = expr st in
    eat_punct st ";";
    let v2 = ident st in
    if v2 <> v then err st ("the loop variable " ^ v);
    eat_punct st "<";
    let hi = expr st in
    eat_punct st ";";
    let v3 = ident st in
    if v3 <> v then err st ("the loop variable " ^ v);
    eat_punct st "++";
    eat_punct st ")";
    Ast.For (v, lo, hi, block st)
  | KW "return" ->
    advance st;
    if peek st = PUNCT ";" then (advance st; Ast.Return None)
    else begin
      let e = expr st in
      eat_punct st ";";
      Ast.Return (Some e)
    end
  | KW "barrier" ->
    advance st;
    eat_punct st ";";
    Ast.Barrier
  | KW "spawn" ->
    advance st;
    let callee = ident st in
    let args = call_args st in
    eat_punct st ";";
    Ast.Spawn { callee; args }
  | KW "sync" ->
    advance st;
    eat_punct st ";";
    Ast.Sync
  | KW "lock" ->
    advance st;
    eat_punct st "(";
    let lv = lvalue st in
    eat_punct st ")";
    eat_punct st ";";
    Ast.Lock lv
  | KW "unlock" ->
    advance st;
    eat_punct st "(";
    let lv = lvalue st in
    eat_punct st ")";
    eat_punct st ";";
    Ast.Unlock lv
  | IDENT name when peek2 st = PUNCT "(" && List.mem name st.funcs ->
    advance st;
    let args = call_args st in
    eat_punct st ";";
    Ast.Call { ret = None; callee = name; args }
  | IDENT _ -> (
    let lv = lvalue st in
    eat_punct st "=";
    match peek st with
    | IDENT callee
      when lv.Ast.path = [] && peek2 st = PUNCT "(" && List.mem callee st.funcs ->
      advance st;
      let args = call_args st in
      eat_punct st ";";
      Ast.Call { ret = Some lv.Ast.base; callee; args }
    | _ ->
      let e = expr st in
      eat_punct st ";";
      if lv.Ast.path <> [] || List.mem lv.Ast.base st.globals then
        Ast.Store (lv, e)
      else Ast.Set (lv.Ast.base, e))
  | _ -> err st "a statement"

and call_args st =
  eat_punct st "(";
  if peek st = PUNCT ")" then (advance st; [])
  else begin
    let rec go acc =
      let e = expr st in
      if peek st = PUNCT "," then (advance st; go (e :: acc))
      else (eat_punct st ")"; List.rev (e :: acc))
    in
    go []
  end

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

let struct_def st =
  eat_kw st "struct";
  let sname = ident st in
  eat_punct st "{";
  let rec fields acc =
    if peek st = PUNCT "}" then (advance st; List.rev acc)
    else begin
      let base = base_type st in
      let fname = ident st in
      let ds = dims st in
      eat_punct st ";";
      fields ((fname, apply_dims base ds) :: acc)
    end
  in
  { Ast.sname; fields = fields [] }

let func st =
  eat_kw st "void";
  let fname = ident st in
  eat_punct st "(";
  let params =
    if peek st = PUNCT ")" then (advance st; [])
    else begin
      let rec go acc =
        let p = ident st in
        if peek st = PUNCT "," then (advance st; go (p :: acc))
        else (eat_punct st ")"; List.rev (p :: acc))
      in
      go []
    end
  in
  { Ast.fname; params; body = block st }

(* The statement grammar tells calls and assignments apart by the callee
   name, so function and global names are collected in a pre-scan. *)
let prescan toks =
  let rec go globals funcs = function
    | (KW "void", _) :: (IDENT f, _) :: rest -> go globals (f :: funcs) rest
    | (KW "shared", _) :: (KW "struct", _) :: (IDENT _, _) :: (IDENT g, _) :: rest
    | (KW "shared", _) :: (KW _, _) :: (IDENT g, _) :: rest
      -> go (g :: globals) funcs rest
    | _ :: rest -> go globals funcs rest
    | [] -> (globals, funcs)
  in
  go [] [] toks

let parse src =
  let toks = try tokenize src with Failure m -> raise (Parse_error m) in
  let globals0, funcs0 = prescan toks in
  let st = { toks; globals = globals0; funcs = funcs0 } in
  eat_kw st "program";
  let pname = ident st in
  eat_punct st ";";
  let structs = ref [] and globals = ref [] and funcs = ref [] in
  let entry = ref "main" in
  let rec items () =
    match peek st with
    | KW "struct" ->
      structs := struct_def st :: !structs;
      items ()
    | KW "shared" ->
      advance st;
      let base = base_type st in
      let name = ident st in
      let ds = dims st in
      eat_punct st ";";
      globals := (name, apply_dims base ds) :: !globals;
      items ()
    | KW "void" ->
      funcs := func st :: !funcs;
      items ()
    | KW "entry" ->
      advance st;
      entry := ident st;
      eat_punct st ";";
      items ()
    | EOF -> ()
    | _ -> err st "a struct, shared declaration, function, or entry"
  in
  items ();
  {
    Ast.pname;
    structs = List.rev !structs;
    globals = List.rev !globals;
    funcs = List.rev !funcs;
    entry = !entry;
  }

let parse_result src =
  match parse src with
  | p -> Ok p
  | exception Parse_error m -> Error m

let parse_and_validate src =
  match parse src with
  | p -> Fs_ir.Validate.check p |> Result.map (fun () -> p)
  | exception Parse_error m -> Error [ m ]
