module Ast = Fs_ir.Ast
module Sym = Fs_rsd.Sym
module Rsd = Fs_rsd.Rsd
module Callgraph = Fs_cfg.Callgraph

let unknown_loop_weight = 10.0

type key = { var : string; fieldsig : string list }

let key_to_string k =
  match k.fieldsig with
  | [] -> k.var
  | fs -> k.var ^ "." ^ String.concat "." fs

type var_access = { reads : Rsd.Set.t; writes : Rsd.Set.t }

type t = {
  nprocs_ : int;
  phases_ : int;
  rsd_limit : int;
  tbl : (int * int * key, var_access) Hashtbl.t;  (* phase, pid, key *)
  phase_weight_ : float array;
  all_keys : key list;
}

let nprocs t = t.nprocs_
let phases t = t.phases_
let keys t = t.all_keys
let get t ~phase ~pid key = Hashtbl.find_opt t.tbl (phase, pid, key)

let empty_access limit =
  { reads = Rsd.Set.empty ~limit (); writes = Rsd.Set.empty ~limit () }

let union_access a b =
  { reads = Rsd.Set.union a.reads b.reads; writes = Rsd.Set.union a.writes b.writes }

let per_pid t ~pid key =
  let acc = ref (empty_access t.rsd_limit) in
  for phase = 0 to t.phases_ - 1 do
    match get t ~phase ~pid key with
    | Some a -> acc := union_access !acc a
    | None -> ()
  done;
  !acc

let phase_access t ~phase key =
  let acc = ref (empty_access t.rsd_limit) in
  for pid = 0 to t.nprocs_ - 1 do
    match get t ~phase ~pid key with
    | Some a -> acc := union_access !acc a
    | None -> ()
  done;
  !acc

let phase_weight t phase = t.phase_weight_.(phase)

let fold_key t key f init =
  let acc = ref init in
  for phase = 0 to t.phases_ - 1 do
    for pid = 0 to t.nprocs_ - 1 do
      match get t ~phase ~pid key with
      | Some a -> acc := f !acc a
      | None -> ()
    done
  done;
  !acc

let read_weight t key =
  fold_key t key (fun acc a -> acc +. Rsd.Set.total_weight a.reads) 0.0

let write_weight t key =
  fold_key t key (fun acc a -> acc +. Rsd.Set.total_weight a.writes) 0.0

(* ------------------------------------------------------------------ *)
(* The abstract walk.                                                  *)

type walker = {
  prog : Ast.program;
  cg : Callgraph.t;
  pid : int;
  nprocs : int;
  profile : bool;
  limit : int;
  tbl : (int * int * key, var_access) Hashtbl.t;
  phase_weight : float array;
  mutable phase : int;
}

(* Names assigned anywhere in a block (recursively), used to widen
   loop-carried private variables before walking a loop body. *)
let assigned_names block =
  let acc = ref [] in
  Ast.iter_stmts
    (fun s ->
      match s with
      | Ast.Set (n, _) | Ast.Decl (n, _) | Ast.Call { ret = Some n; _ } ->
        if not (List.mem n !acc) then acc := n :: !acc
      | _ -> ())
    block;
  !acc

let static_barriers_block cg block =
  let n = ref 0 in
  Ast.iter_stmts
    (fun s ->
      match s with
      | Ast.Barrier -> incr n
      | Ast.Call { callee; _ } -> n := !n + Callgraph.barriers_in cg callee
      | _ -> ())
    block;
  !n

let key_of_lvalue (lv : Ast.lvalue) =
  {
    var = lv.base;
    fieldsig =
      List.filter_map (function Ast.Fld f -> Some f | Ast.Idx _ -> None) lv.path;
  }

let record w lv ~write ~weight dims =
  let key = key_of_lvalue lv in
  let cell = (w.phase, w.pid, key) in
  let a =
    match Hashtbl.find_opt w.tbl cell with
    | Some a -> a
    | None -> empty_access w.limit
  in
  let rsd = Rsd.create (Array.of_list dims) ~weight in
  let a =
    if write then { a with writes = Rsd.Set.add a.writes rsd }
    else { a with reads = Rsd.Set.add a.reads rsd }
  in
  Hashtbl.replace w.tbl cell a;
  w.phase_weight.(w.phase) <- w.phase_weight.(w.phase) +. weight

type env = (string * Sym.t) list

let lookup env n =
  match List.assoc_opt n env with Some s -> s | None -> Sym.Unknown

(* Evaluate an expression in the abstract domain, recording the shared
   reads it performs. *)
let rec eval w env ~weight (e : Ast.expr) : Sym.t =
  match e with
  | Int_lit n -> Sym.Const n
  | Float_lit _ -> Sym.Unknown
  | Pdv -> Sym.Const w.pid
  | Nprocs -> Sym.Const w.nprocs
  | Priv n -> lookup env n
  | Load lv ->
    record_access w env ~weight ~write:false lv;
    Sym.Unknown
  | Unop (Neg, e) -> Sym.neg (eval w env ~weight e)
  | Unop (Not, e) -> (
    match eval w env ~weight e with
    | Sym.Const 0 -> Sym.Const 1
    | Sym.Const _ -> Sym.Const 0
    | _ -> Sym.Unknown)
  | Binop (op, e1, e2) ->
    let a = eval w env ~weight e1 in
    let b = eval w env ~weight e2 in
    let of_opt = function
      | Some true -> Sym.Const 1
      | Some false -> Sym.Const 0
      | None -> Sym.Unknown
    in
    (match op with
     | Add -> Sym.add a b
     | Sub -> Sym.sub a b
     | Mul -> Sym.mul a b
     | Div -> Sym.div a b
     | Mod -> Sym.mod_ a b
     | Min -> Sym.min_ a b
     | Max -> Sym.max_ a b
     | Lt -> of_opt (Sym.lt a b)
     | Le -> of_opt (Sym.le a b)
     | Gt -> of_opt (Sym.lt b a)
     | Ge -> of_opt (Sym.le b a)
     | Eq -> of_opt (Sym.eq a b)
     | Ne -> of_opt (Option.map not (Sym.eq a b))
     | And -> (
       match (Sym.eq a (Sym.Const 0), Sym.eq b (Sym.Const 0)) with
       | Some true, _ | _, Some true -> Sym.Const 0
       | Some false, Some false -> Sym.Const 1
       | _ -> Sym.Unknown)
     | Or -> (
       match (Sym.eq a (Sym.Const 0), Sym.eq b (Sym.Const 0)) with
       | Some false, _ | _, Some false -> Sym.Const 1
       | Some true, Some true -> Sym.Const 0
       | _ -> Sym.Unknown))

and record_access w env ~weight ~write (lv : Ast.lvalue) =
  let dims =
    List.filter_map
      (function
        | Ast.Idx e -> Some (eval w env ~weight e)
        | Ast.Fld _ -> None)
      lv.path
  in
  record w lv ~write ~weight dims

let decide sym =
  match sym with
  | Sym.Const 0 -> Some false
  | Sym.Const _ -> Some true
  | _ -> (
    match Sym.eq sym (Sym.Const 0) with
    | Some true -> Some false
    | Some false -> Some true
    | None -> None)

let widen env names = List.map (fun n -> (n, Sym.Unknown)) names @ env

let rec walk_block w env ~weight ~stack (block : Ast.block) : env =
  List.fold_left (fun env s -> walk_stmt w env ~weight ~stack s) env block

and walk_stmt w env ~weight ~stack (s : Ast.stmt) : env =
  match s with
  | Store (lv, e) ->
    let _ = eval w env ~weight e in
    record_access w env ~weight ~write:true lv;
    env
  | Set (n, e) | Decl (n, e) -> (n, eval w env ~weight e) :: env
  | If (c, b1, b2) -> (
    match decide (eval w env ~weight c) with
    | Some true ->
      let env' = walk_block w env ~weight ~stack b1 in
      (* keep phases aligned across processes even when this process
         provably skips the other arm *)
      w.phase <- w.phase + static_barriers_block w.cg b2;
      env'
    | Some false ->
      w.phase <- w.phase + static_barriers_block w.cg b1;
      walk_block w env ~weight ~stack b2
    | None ->
      let wgt = if w.profile then weight *. 0.5 else weight in
      let _ = walk_block w env ~weight:wgt ~stack b1 in
      let _ = walk_block w env ~weight:wgt ~stack b2 in
      (* join: variables assigned in either arm become unknown *)
      widen env (assigned_names b1 @ assigned_names b2))
  | While (c, b) ->
    (* variables assigned in the body are unknown both inside the loop and
       after it (the loop may run any number of times) *)
    let env = widen env (assigned_names b) in
    let _ = eval w env ~weight c in
    let wgt = if w.profile then weight *. unknown_loop_weight else weight in
    let _ = walk_block w env ~weight:wgt ~stack b in
    env
  | For (v, lo, hi, b) ->
    let slo = eval w env ~weight lo in
    let shi = eval w env ~weight hi in
    let env' = widen env (List.filter (fun n -> n <> v) (assigned_names b)) in
    let bounds_known = (Sym.bounds slo, Sym.bounds shi) in
    (match bounds_known with
     | Some (l, _), Some (_, h) when h <= l ->
       (* statically empty loop: the body never runs; keep the phase
          numbering consistent anyway *)
       w.phase <- w.phase + static_barriers_block w.cg b
     | _ ->
       let range, trip =
         match bounds_known with
         | Some (l, _), Some (_, h) ->
           (Sym.interval ~lo:l ~hi:(h - 1) ~stride:1, Some (h - l))
         | _ -> (Sym.Unknown, None)
       in
       let wgt =
         if not w.profile then weight
         else
           match trip with
           | Some n -> weight *. float_of_int (max 1 n)
           | None -> weight *. unknown_loop_weight
       in
       let _ = walk_block w ((v, range) :: env') ~weight:wgt ~stack b in
       ());
    (* body assignments survive the loop with unknown values *)
    widen env (assigned_names b)
  | Call { ret; callee; args } ->
    let argvals = List.map (fun a -> eval w env ~weight a) args in
    (if not (List.mem callee stack) then
       match List.find_opt (fun (f : Ast.func) -> f.fname = callee) w.prog.funcs with
       | Some f ->
         let cenv = List.combine f.params argvals in
         let _ = walk_block w cenv ~weight ~stack:(callee :: stack) f.body in
         ()
       | None -> ());
    (match ret with Some n -> (n, Sym.Unknown) :: env | None -> env)
  | Spawn { callee; args } ->
    (* The static analyses cannot know which process a stolen task lands
       on; attribute the task body to the spawning process, exactly the
       approximation the paper's compile-time planner is stuck with. *)
    let argvals = List.map (fun a -> eval w env ~weight a) args in
    (if not (List.mem callee stack) then
       match List.find_opt (fun (f : Ast.func) -> f.fname = callee) w.prog.funcs with
       | Some f ->
         let cenv = List.combine f.params argvals in
         let _ = walk_block w cenv ~weight ~stack:(callee :: stack) f.body in
         ()
       | None -> ());
    env
  | Sync -> env
  | Return e ->
    (match e with Some e -> ignore (eval w env ~weight e) | None -> ());
    env
  | Barrier ->
    w.phase <- w.phase + 1;
    env
  | Lock lv | Unlock lv ->
    (* lock traffic appears in the summary as writes to the lock datum *)
    record_access w env ~weight ~write:true lv;
    env

let analyze ?(rsd_limit = Rsd.Set.default_limit) ?(profile = true) prog ~nprocs =
  let cg = Callgraph.build prog in
  let n_phases = Callgraph.barriers_in cg prog.Ast.entry + 1 in
  let tbl = Hashtbl.create 256 in
  let phase_weight = Array.make n_phases 0.0 in
  for pid = 0 to nprocs - 1 do
    let w =
      { prog; cg; pid; nprocs; profile; limit = rsd_limit; tbl; phase_weight;
        phase = 0 }
    in
    let entry = Ast.find_func prog prog.entry in
    let _ = walk_block w [] ~weight:1.0 ~stack:[ prog.entry ] entry.body in
    ()
  done;
  let key_set = Hashtbl.create 32 in
  Hashtbl.iter (fun (_, _, k) _ -> Hashtbl.replace key_set k ()) tbl;
  let all_keys =
    Hashtbl.fold (fun k () acc -> k :: acc) key_set []
    |> List.sort (fun a b -> compare (key_to_string a) (key_to_string b))
  in
  { nprocs_ = nprocs; phases_ = n_phases; rsd_limit; tbl;
    phase_weight_ = phase_weight; all_keys }

let pp fmt t =
  Format.fprintf fmt "@[<v>summary: %d procs, %d phases@," t.nprocs_ t.phases_;
  List.iter
    (fun key ->
      Format.fprintf fmt "%s: R %.1f / W %.1f@," (key_to_string key)
        (read_weight t key) (write_weight t key);
      for pid = 0 to min 3 (t.nprocs_ - 1) do
        let a = per_pid t ~pid key in
        if not (Rsd.Set.is_empty a.writes) then
          Format.fprintf fmt "  P%d writes %a@," pid Rsd.Set.pp a.writes
      done)
    t.all_keys;
  Format.fprintf fmt "@]"
