module Ast = Fs_ir.Ast

type t = { depths : int array }

let analyze (prog : Ast.program) =
  let acc = ref [] in
  let rec walk_block stack depth (b : Ast.block) =
    List.iter (walk_stmt stack depth) b
  and walk_stmt stack depth (s : Ast.stmt) =
    match s with
    | Ast.Barrier -> acc := depth :: !acc
    | Ast.If (_, b1, b2) ->
      walk_block stack depth b1;
      walk_block stack depth b2
    | Ast.While (_, b) | Ast.For (_, _, _, b) -> walk_block stack (depth + 1) b
    | Ast.Call { callee; _ } -> (
      if not (List.mem callee stack) then
        match List.find_opt (fun (f : Ast.func) -> f.fname = callee) prog.funcs with
        | Some f -> walk_block (callee :: stack) depth f.body
        | None -> ())
    | Ast.Store _ | Ast.Set _ | Ast.Decl _ | Ast.Return _ | Ast.Lock _
    | Ast.Unlock _ -> ()
    (* Spawned bodies cannot contain barriers (Validate.check_task_barriers),
       and sync is a task join, not a global phase boundary. *)
    | Ast.Spawn _ | Ast.Sync -> ()
  in
  (match List.find_opt (fun (f : Ast.func) -> f.fname = prog.entry) prog.funcs with
   | Some f -> walk_block [ prog.entry ] 0 f.body
   | None -> ());
  { depths = Array.of_list (List.rev !acc) }

let phase_count t = Array.length t.depths + 1
let barrier_depths t = Array.to_list t.depths

let can_repeat t i =
  let n = Array.length t.depths in
  if i < 0 || i > n then invalid_arg "Nonconcurrency.can_repeat";
  let before = if i = 0 then 0 else t.depths.(i - 1) in
  let after = if i = n then 0 else t.depths.(i) in
  before > 0 || after > 0
