module Ast = Fs_ir.Ast

type t = (string, (string, unit) Hashtbl.t) Hashtbl.t

let analyze (prog : Ast.program) : t =
  let deps : t = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) -> Hashtbl.add deps f.fname (Hashtbl.create 8))
    prog.funcs;
  let changed = ref true in
  let dep_of fname = Hashtbl.find deps fname in
  let rec expr_dep fname (e : Ast.expr) =
    match e with
    | Pdv -> true
    | Int_lit _ | Float_lit _ | Nprocs -> false
    | Priv n -> Hashtbl.mem (dep_of fname) n
    | Load lv ->
      (* shared memory contents are not PDVs, but index expressions do not
         contribute either way *)
      ignore lv;
      false
    | Unop (_, e) -> expr_dep fname e
    | Binop (_, e1, e2) -> expr_dep fname e1 || expr_dep fname e2
  in
  let mark fname n =
    let tbl = dep_of fname in
    if not (Hashtbl.mem tbl n) then begin
      Hashtbl.add tbl n ();
      changed := true
    end
  in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ast.func) ->
        Ast.iter_stmts
          (fun s ->
            match s with
            | Ast.Set (n, e) | Ast.Decl (n, e) ->
              if expr_dep f.fname e then mark f.fname n
            | Ast.For (n, lo, hi, _) ->
              if expr_dep f.fname lo || expr_dep f.fname hi then mark f.fname n
            | Ast.Call { callee; args; _ } | Ast.Spawn { callee; args } -> (
              match List.find_opt (fun (g : Ast.func) -> g.fname = callee) prog.funcs with
              | None -> ()
              | Some g ->
                List.iteri
                  (fun i arg ->
                    if i < List.length g.params && expr_dep f.fname arg then
                      mark g.fname (List.nth g.params i))
                  args)
            | _ -> ())
          f.body)
      prog.funcs
  done;
  deps

let pdv_privates t fname =
  match Hashtbl.find_opt t fname with
  | None -> raise Not_found
  | Some tbl -> List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) tbl [])

let is_pdv t ~func n =
  match Hashtbl.find_opt t func with
  | None -> false
  | Some tbl -> Hashtbl.mem tbl n
